package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccpfs/internal/extent"
)

// allMessages returns fresh instances of every wire message.
func allMessages() []Msg {
	return []Msg{
		&Ack{},
		&LockRequest{},
		&LockGrant{},
		&ReleaseRequest{},
		&DowngradeRequest{},
		&RevokeRequest{},
		&RevokeBatch{},
		&RevokeBatchAck{},
		&HandoffRequest{},
		&HandoffAckRequest{},
		&LeasePropagate{},
		&FlushRequest{},
		&ReadRequest{},
		&ReadReply{},
		&MinSNRequest{},
		&MinSNReply{},
		&CreateRequest{},
		&OpenRequest{},
		&FileReply{},
		&SetSizeRequest{},
		&SizeReply{},
		&HelloRequest{},
		&HelloReply{},
		&ListReply{},
		&LockReport{},
		&PartitionMapReply{},
		&SlotFreezeRequest{},
		&SlotState{},
		&SlotInstall{},
		&SlotReportRequest{},
	}
}

// TestDecodersNeverPanicOnGarbage feeds random byte soup to every
// message decoder: corrupt frames must fail with an error, never panic
// or allocate absurdly.
func TestDecodersNeverPanicOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		frame := make([]byte, n)
		rng.Read(frame)
		for _, m := range allMessages() {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%T panicked on %x: %v", m, frame, r)
					}
				}()
				_ = Unmarshal(frame, m) // error or success, never panic
			}()
		}
	}
}

// TestDecodersRejectTruncations: every truncation of a valid frame must
// be rejected (no silent partial decode), except prefixes that happen to
// form a complete shorter encoding — which cannot exist for these fixed
// layouts, so all must fail.
func TestDecodersRejectTruncations(t *testing.T) {
	full := Marshal(&LockRequest{
		Resource: 1, Client: 2, Mode: 3,
		Range:   extent.New(10, 20),
		Extents: []extent.Extent{extent.New(0, 5)},
	})
	for cut := 0; cut < len(full); cut++ {
		var m LockRequest
		if err := Unmarshal(full[:cut], &m); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
}

// TestLockReportRoundTrip covers the recovery message.
func TestLockReportRoundTrip(t *testing.T) {
	in := &LockReport{Locks: []LockRecord{
		{Resource: 1, Client: 2, LockID: 3, Mode: 4, Range: extent.New(0, extent.Inf), SN: 9, State: 1},
		{Resource: 7, Client: 2, LockID: 8, Mode: 1, Range: extent.New(5, 6), SN: 0, State: 0},
	}}
	var out LockReport
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Locks) != 2 || out.Locks[0] != in.Locks[0] || out.Locks[1] != in.Locks[1] {
		t.Fatalf("round trip = %+v", out)
	}
}

// TestListReplyRoundTrip covers the namespace listing message.
func TestListReplyRoundTrip(t *testing.T) {
	f := func(paths []string) bool {
		in := &ListReply{Paths: paths}
		var out ListReply
		if err := Unmarshal(Marshal(in), &out); err != nil {
			return false
		}
		if len(out.Paths) != len(paths) {
			return false
		}
		for i := range paths {
			if out.Paths[i] != paths[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzMessageDecode is the native-fuzzing companion to
// TestDecodersNeverPanicOnGarbage: coverage-guided byte soup against
// every message decoder. A decoder must error or succeed, never panic,
// and a successful decode must re-encode without panicking (the frames
// it produces feed the batched send path).
// TestRevokeBatchRoundTrip covers the batched revocation messages.
func TestRevokeBatchRoundTrip(t *testing.T) {
	in := &RevokeBatch{Entries: []RevokeEntry{{Resource: 7, LockID: 1}, {Resource: 7, LockID: 2}, {Resource: 9, LockID: 3}}}
	var out RevokeBatch
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 3 || out.Entries[0] != in.Entries[0] || out.Entries[2] != in.Entries[2] {
		t.Fatalf("round trip = %+v", out)
	}
	ackIn := &RevokeBatchAck{Acked: in.Entries}
	var ackOut RevokeBatchAck
	if err := Unmarshal(Marshal(ackIn), &ackOut); err != nil {
		t.Fatal(err)
	}
	if len(ackOut.Acked) != 3 || ackOut.Acked[1] != ackIn.Acked[1] {
		t.Fatalf("ack round trip = %+v", ackOut)
	}
}

// FuzzRevokeBatchDecode is the coverage-guided companion for the
// batched revocation messages: byte soup must error or decode, never
// panic or over-allocate, and a successful decode must re-encode to an
// equivalent frame (the batch path re-marshals entries it splits).
func FuzzRevokeBatchDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(&RevokeBatch{}))
	f.Add(Marshal(&RevokeBatch{Entries: []RevokeEntry{{Resource: 1, LockID: 2}, {Resource: 3, LockID: 4}}}))
	f.Add(Marshal(&RevokeBatch{Entries: []RevokeEntry{{Resource: 1, LockID: 2, Handoff: &HandoffStamp{
		NextOwner: 3, NewLockID: 9, Mode: 2, SN: 4, MustFlush: true,
	}}}}))
	f.Add(Marshal(&RevokeBatch{Entries: []RevokeEntry{{Resource: 1, LockID: 2, Handoff: &HandoffStamp{
		NextOwner: 3, NewLockID: 9, Mode: 1, SN: 4, MustFlush: true,
		Broadcast: &BroadcastGrant{Mode: 1, Range: extent.New(0, 64), Fanout: 2, Leases: []LeaseEntry{
			{Owner: 3, LockID: 9, SN: 4}, {Owner: 5, LockID: 10, SN: 4},
		}},
	}}}}))
	f.Add(Marshal(&RevokeBatchAck{Acked: []RevokeEntry{{Resource: 5, LockID: 6}}}))
	f.Fuzz(func(t *testing.T, frame []byte) {
		var b RevokeBatch
		if err := Unmarshal(frame, &b); err == nil {
			if got := Marshal(&b); string(got) != string(frame) {
				t.Fatalf("RevokeBatch re-encode mismatch: %x != %x", got, frame)
			}
		}
		var a RevokeBatchAck
		if err := Unmarshal(frame, &a); err == nil {
			if got := Marshal(&a); string(got) != string(frame) {
				t.Fatalf("RevokeBatchAck re-encode mismatch: %x != %x", got, frame)
			}
		}
	})
}

// TestSlotStateRoundTrip covers the migration payload messages.
func TestSlotStateRoundTrip(t *testing.T) {
	in := &SlotInstall{Epoch: 42, State: SlotState{
		Slot:  7,
		Epoch: 41,
		Resources: []SlotResource{
			{Resource: 1, NextSN: 9, Grants: 12, Locks: []LockRecord{
				{Resource: 1, Client: 2, LockID: 3, Mode: 4, Range: extent.New(0, 64), SN: 8, State: 1},
			}},
			{Resource: 5, NextSN: 0, Grants: 0},
		},
	}}
	var out SlotInstall
	if err := Unmarshal(Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 42 || out.State.Slot != 7 || out.State.Epoch != 41 ||
		len(out.State.Resources) != 2 ||
		out.State.Resources[0].Locks[0] != in.State.Resources[0].Locks[0] ||
		out.State.Resources[1].NextSN != 0 {
		t.Fatalf("round trip = %+v", out)
	}

	mapIn := &PartitionMapReply{Epoch: 3, Owners: []int32{0, 1, -1, 2}}
	var mapOut PartitionMapReply
	if err := Unmarshal(Marshal(mapIn), &mapOut); err != nil {
		t.Fatal(err)
	}
	if mapOut.Epoch != 3 || len(mapOut.Owners) != 4 || mapOut.Owners[2] != -1 {
		t.Fatalf("map round trip = %+v", mapOut)
	}
}

// FuzzPartitionMsgDecode is the coverage-guided fuzzer for the
// partition-service messages (map refresh, slot freeze/install,
// slot-filtered replay): byte soup must error or decode, never panic,
// and a successful decode must re-encode to the same frame (the
// migration orchestrator forwards a decoded SlotState verbatim).
func FuzzPartitionMsgDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(&PartitionMapReply{Epoch: 1, Owners: []int32{0, 1, 2, 3}}))
	f.Add(Marshal(&SlotFreezeRequest{Slot: 9}))
	f.Add(Marshal(&SlotInstall{Epoch: 2, State: SlotState{Slot: 9, Epoch: 1, Resources: []SlotResource{
		{Resource: 3, NextSN: 4, Grants: 5, Locks: []LockRecord{{Resource: 3, Client: 1, LockID: 2, Mode: 3, Range: extent.New(0, 8), SN: 4, State: 0}}},
	}}}))
	f.Add(Marshal(&SlotReportRequest{Epoch: 7, Slots: []uint32{1, 2, 3}}))
	f.Fuzz(func(t *testing.T, frame []byte) {
		for _, m := range []Msg{&PartitionMapReply{}, &SlotFreezeRequest{}, &SlotState{}, &SlotInstall{}, &SlotReportRequest{}} {
			if err := Unmarshal(frame, m); err == nil {
				if got := Marshal(m); string(got) != string(frame) {
					t.Fatalf("%T re-encode mismatch: %x != %x", m, got, frame)
				}
			}
		}
	})
}

func FuzzMessageDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Marshal(&LockRequest{Resource: 1, Client: 2, Mode: 3, Range: extent.New(10, 20)}))
	f.Add(Marshal(&FlushRequest{Resource: 9, Blocks: []Block{{Range: extent.New(0, 4), SN: 7, Data: []byte{1, 2, 3, 4}}}}))
	f.Add(Marshal(&HelloReply{}))
	cohort := &BroadcastGrant{Mode: 1, Range: extent.New(0, 1<<20), Fanout: 2, Leases: []LeaseEntry{
		{Owner: 5, LockID: 80, SN: 200}, {Owner: 6, LockID: 81, SN: 200}, {Owner: 7, LockID: 82, SN: 200},
	}}
	f.Add(Marshal(&LeasePropagate{Resource: 9, Mode: 1, Range: extent.New(0, 1<<20), Fanout: 2, Leases: cohort.Leases}))
	f.Add(Marshal(&HandoffRequest{Resource: 9, LockID: 80, Acks: []uint64{70, 71}, Broadcast: cohort}))
	f.Add(Marshal(&LockGrant{LockID: 90, Mode: 4, Range: extent.New(0, 1<<20), SN: 201, Delegated: true, GatherParts: 3, HandBack: cohort}))
	f.Add(Marshal(&RevokeRequest{Resource: 9, LockID: 5, Handoff: &HandoffStamp{
		NextOwner: 5, NewLockID: 80, Mode: 1, SN: 200, MustFlush: true, Broadcast: cohort,
	}}))
	f.Fuzz(func(t *testing.T, frame []byte) {
		for _, m := range allMessages() {
			if err := Unmarshal(frame, m); err != nil {
				continue
			}
			var e Encoder
			m.Encode(&e)
		}
	})
}
