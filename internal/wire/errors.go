package wire

import (
	"context"
	"errors"
	"fmt"
)

// ErrorCode classifies an RPC failure so callers can branch on the
// failure class instead of matching error strings. Codes travel on the
// wire as a single byte in error replies, so both ends of a connection
// agree on the classification.
type ErrorCode uint8

// Error codes. CodeUnknown is the zero value: an error the sender did
// not (or could not) classify.
const (
	CodeUnknown ErrorCode = iota
	// CodeTimeout: the operation's deadline expired before it completed.
	CodeTimeout
	// CodeCanceled: the caller canceled the operation.
	CodeCanceled
	// CodeShuttingDown: the node is draining and no longer admits new
	// operations; the caller should fail over or give up cleanly.
	CodeShuttingDown
	// CodeNotOwner: the resource is not served by this node (stale
	// placement or misrouted request).
	CodeNotOwner
	// CodeStale: the lock or handle the request names no longer exists
	// (already released, absorbed, or recovered away).
	CodeStale
	// CodeInvalid: the request is malformed or rejected by validation.
	CodeInvalid
)

// String returns the code's stable name.
func (c ErrorCode) String() string {
	switch c {
	case CodeTimeout:
		return "timeout"
	case CodeCanceled:
		return "canceled"
	case CodeShuttingDown:
		return "shutting down"
	case CodeNotOwner:
		return "not owner"
	case CodeStale:
		return "stale"
	case CodeInvalid:
		return "invalid"
	default:
		return "unknown"
	}
}

// Error is a typed wire error: a failure class plus a human-readable
// message. It is what rpc delivers for remote handler failures and for
// local deadline/cancellation outcomes, replacing the earlier
// stringly-typed remote errors.
type Error struct {
	Code ErrorCode
	Msg  string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Msg == "" {
		return "wire: " + e.Code.String()
	}
	return e.Msg
}

// Is reports whether target matches this error. Two wire errors match
// when their codes match (so errors.Is(err, wire.ErrTimeout) branches on
// the class, not the message), and the timeout/cancel codes additionally
// match the corresponding context sentinels so callers that test
// errors.Is(err, context.DeadlineExceeded) keep working.
func (e *Error) Is(target error) bool {
	if t, ok := target.(*Error); ok {
		return t.Code == e.Code
	}
	switch e.Code {
	case CodeTimeout:
		return target == context.DeadlineExceeded
	case CodeCanceled:
		return target == context.Canceled
	}
	return false
}

// Timeout reports whether the error is deadline-shaped, satisfying the
// net.Error-style interface some callers probe for.
func (e *Error) Timeout() bool { return e.Code == CodeTimeout }

// Sentinel errors, one per failure class. Compare with errors.Is; the
// match is by code, so a decoded remote error with its own message still
// matches its sentinel.
var (
	ErrTimeout      = &Error{Code: CodeTimeout, Msg: "wire: deadline exceeded"}
	ErrCanceled     = &Error{Code: CodeCanceled, Msg: "wire: canceled"}
	ErrShuttingDown = &Error{Code: CodeShuttingDown, Msg: "wire: node shutting down"}
	ErrNotOwner     = &Error{Code: CodeNotOwner, Msg: "wire: resource not owned by this node"}
	ErrStale        = &Error{Code: CodeStale, Msg: "wire: stale lock or handle"}
	ErrInvalid      = &Error{Code: CodeInvalid, Msg: "wire: invalid request"}
)

// Errorf builds a typed error with a formatted message.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the failure class of err: the code of the outermost
// wire.Error in its chain, or the class implied by a context sentinel,
// or CodeUnknown.
func CodeOf(err error) ErrorCode {
	var we *Error
	if errors.As(err, &we) {
		return we.Code
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	return CodeUnknown
}

// FromContext converts a context error into its typed wire form,
// preserving unrelated errors as-is. It is what the RPC layer returns
// when a call's context fires.
func FromContext(err error) error {
	switch err {
	case context.DeadlineExceeded:
		return ErrTimeout
	case context.Canceled:
		return ErrCanceled
	}
	return err
}

// EncodeError appends err's classification and message to an encoder,
// the payload of a statusErr RPC reply.
func EncodeError(e *Encoder, err error) {
	e.U8(uint8(CodeOf(err)))
	e.String(err.Error())
}

// DecodeError reconstructs the typed error from a statusErr payload.
func DecodeError(d *Decoder) error {
	code := ErrorCode(d.U8())
	msg := d.String()
	if d.Err() != nil {
		return &Error{Code: CodeUnknown, Msg: "wire: malformed remote error"}
	}
	return &Error{Code: code, Msg: msg}
}
