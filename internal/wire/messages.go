package wire

import "ccpfs/internal/extent"

// Method identifies an RPC handler. Methods below 128 are client→server;
// methods at or above 128 are server→client callbacks.
type Method uint8

// RPC methods.
const (
	// Lock service.
	MLock       Method = 1 // LockRequest -> LockGrant
	MRelease    Method = 2 // ReleaseRequest -> Ack
	MDowngrade  Method = 3 // DowngradeRequest -> Ack
	MHandoffAck Method = 7 // HandoffAckRequest -> Ack (new owner confirms a delegated lock)
	// IO service.
	MFlush Method = 10 // FlushRequest -> Ack
	MRead  Method = 11 // ReadRequest -> ReadReply
	MMinSN Method = 12 // MinSNRequest -> MinSNReply
	// Metadata service.
	MCreate  Method = 20 // CreateRequest -> FileReply
	MOpen    Method = 21 // OpenRequest -> FileReply
	MStat    Method = 22 // OpenRequest -> FileReply
	MSetSize Method = 23 // SetSizeRequest -> SizeReply
	MRemove  Method = 24 // OpenRequest -> Ack
	MReserve Method = 25 // SetSizeRequest (Size = byte count) -> SizeReply (reserved offset)
	MList    Method = 26 // Ack -> ListReply
	// Partition service (slot mastership; DESIGN.md §12).
	MPartitionMap Method = 4 // Ack -> PartitionMapReply (client map refresh)
	MSlotFreeze   Method = 5 // SlotFreezeRequest -> SlotState (migration source)
	MSlotInstall  Method = 6 // SlotInstall -> Ack (migration target)
	// Session.
	MHello Method = 30 // HelloRequest -> HelloReply
	// Server→client callbacks.
	MRevoke      Method = 128 // RevokeRequest -> Ack
	MReport      Method = 129 // Ack -> LockReport (server recovery, §IV-C2)
	MRevokeBatch Method = 130 // RevokeBatch -> RevokeBatchAck
	MReportSlots Method = 131 // SlotReportRequest -> LockReport (slot takeover replay)
	// MHandoff activates a delegated lock at its new owner. It travels
	// client→client when the previous holder transfers the lock directly,
	// and server→client when the server resolves the delegation itself
	// (holder vanished, handoff refused, or reclaim timeout). Duplicate
	// activations are idempotent at the receiver.
	MHandoff Method = 132 // HandoffRequest -> Ack
	// MLeasePropagate pushes read leases peer-to-peer down a
	// bounded-fanout tree: the lead reader of a broadcast delegation
	// installs its own lease and forwards the remaining subtrees to the
	// first member of each, which recurses. Travels client→client only;
	// the server resolves stragglers through MHandoff as usual.
	MLeasePropagate Method = 133 // LeasePropagate -> Ack
)

// methodNames maps methods to their metric/debug labels. Indexed by the
// raw uint8 so lookups never allocate.
var methodNames = [256]string{
	MLock:           "Lock",
	MRelease:        "Release",
	MDowngrade:      "Downgrade",
	MFlush:          "Flush",
	MRead:           "Read",
	MMinSN:          "MinSN",
	MCreate:         "Create",
	MOpen:           "Open",
	MStat:           "Stat",
	MSetSize:        "SetSize",
	MRemove:         "Remove",
	MReserve:        "Reserve",
	MList:           "List",
	MHello:          "Hello",
	MRevoke:         "Revoke",
	MReport:         "Report",
	MRevokeBatch:    "RevokeBatch",
	MHandoff:        "Handoff",
	MHandoffAck:     "HandoffAck",
	MLeasePropagate: "LeasePropagate",
	MPartitionMap:   "PartitionMap",
	MSlotFreeze:     "SlotFreeze",
	MSlotInstall:    "SlotInstall",
	MReportSlots:    "ReportSlots",
}

// String returns the method's human-readable name, or "m<N>" for an
// unknown method number.
func (m Method) String() string {
	if s := methodNames[m]; s != "" {
		return s
	}
	return "m" + itoa(uint8(m))
}

// itoa formats a uint8 without pulling fmt into the wire package's
// dependency graph.
func itoa(v uint8) string {
	if v == 0 {
		return "0"
	}
	var buf [3]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = '0' + v%10
		v /= 10
	}
	return string(buf[i:])
}

// Msg is the interface all wire messages implement.
type Msg interface {
	Encode(e *Encoder)
	Decode(d *Decoder)
}

// emptyFrame is the shared encoding of every payload-free message
// (Ack, cancel frames): all of them marshal to zero bytes, so they can
// share one frame instead of each allocating a 64-byte encoder.
var emptyFrame = make([]byte, 0)

// Marshal encodes m into a frame. Payload-free messages return a shared
// empty frame; the caller owns the result either way (the shared frame
// is immutable because it has no bytes to mutate and zero capacity).
func Marshal(m Msg) []byte {
	var e Encoder
	m.Encode(&e)
	if e.buf == nil {
		return emptyFrame
	}
	return e.buf
}

// Unmarshal decodes a frame into m, requiring full consumption.
func Unmarshal(b []byte, m Msg) error {
	d := NewDecoder(b)
	m.Decode(d)
	return d.Finish()
}

func encodeExtent(e *Encoder, x extent.Extent) {
	e.I64(x.Start)
	e.I64(x.End)
}

func decodeExtent(d *Decoder) extent.Extent {
	return extent.Extent{Start: d.I64(), End: d.I64()}
}

// Ack is the empty reply used by methods that only signal completion.
type Ack struct{}

// Encode implements Msg.
func (Ack) Encode(*Encoder) {}

// Decode implements Msg.
func (*Ack) Decode(*Decoder) {}

// LockRequest asks a lock server for a byte-range lock on a resource.
type LockRequest struct {
	Resource uint64
	Client   uint32
	Mode     uint8
	Range    extent.Extent
	// Extents carries the non-contiguous lock range of the DLM-datatype
	// baseline; empty for interval-based policies.
	Extents []extent.Extent
	// HandoffAcks piggybacks delegation acknowledgements for locks on
	// this resource: the client received them via direct client-to-client
	// handoff and confirms ownership on its next lock RPC, saving the
	// standalone MHandoffAck round trip in steady ping-pong traffic.
	HandoffAcks []uint64
}

// Encode implements Msg.
func (m *LockRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U32(m.Client)
	e.U8(m.Mode)
	encodeExtent(e, m.Range)
	e.U32(uint32(len(m.Extents)))
	for _, x := range m.Extents {
		encodeExtent(e, x)
	}
	e.U32(uint32(len(m.HandoffAcks)))
	for _, id := range m.HandoffAcks {
		e.U64(id)
	}
}

// Decode implements Msg.
func (m *LockRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.Client = d.U32()
	m.Mode = d.U8()
	m.Range = decodeExtent(d)
	n := d.Len32(16)
	if n > 0 {
		m.Extents = make([]extent.Extent, n)
		for i := range m.Extents {
			m.Extents[i] = decodeExtent(d)
		}
	}
	n = d.Len32(8)
	if n > 0 {
		m.HandoffAcks = make([]uint64, n)
		for i := range m.HandoffAcks {
			m.HandoffAcks[i] = d.U64()
		}
	}
}

// LockGrant is the reply to a LockRequest. The server may expand the
// range, upgrade the mode (automatic lock conversion), tag the lock
// CANCELING (early revocation), and list same-client lock IDs the grant
// absorbed during upgrading.
type LockGrant struct {
	LockID   uint64
	Mode     uint8
	Range    extent.Extent
	SN       uint64
	State    uint8
	Absorbed []uint64
	// Delegated marks a handoff grant: the lock exists in the server's
	// table but ownership arrives via a direct transfer from the previous
	// holder (MHandoff). The client must wait for that activation before
	// using the lock, and must ack the server once it owns it.
	Delegated bool
	// GatherParts is the number of client-to-client transfer parts a
	// delegated write grant must collect before activating: a writer
	// taking over from a reader cohort receives one MHandoff part per
	// cohort member instead of a single transfer. Zero for ordinary
	// delegations (one transfer activates the lock).
	GatherParts uint32
	// HandBack pre-arms the next read fan-out: the server has already
	// installed delegated leases for the displaced reader cohort, and
	// the grantee (a writer) owes them a broadcast transfer when it
	// finishes — without another server round trip.
	HandBack *BroadcastGrant
}

// Encode implements Msg.
func (m *LockGrant) Encode(e *Encoder) {
	e.U64(m.LockID)
	e.U8(m.Mode)
	encodeExtent(e, m.Range)
	e.U64(m.SN)
	e.U8(m.State)
	e.U32(uint32(len(m.Absorbed)))
	for _, id := range m.Absorbed {
		e.U64(id)
	}
	e.Bool(m.Delegated)
	e.U32(m.GatherParts)
	encodeBroadcastGrant(e, m.HandBack)
}

// Decode implements Msg.
func (m *LockGrant) Decode(d *Decoder) {
	m.LockID = d.U64()
	m.Mode = d.U8()
	m.Range = decodeExtent(d)
	m.SN = d.U64()
	m.State = d.U8()
	n := d.Len32(8)
	if n > 0 {
		m.Absorbed = make([]uint64, n)
		for i := range m.Absorbed {
			m.Absorbed[i] = d.U64()
		}
	}
	m.Delegated = d.Bool()
	m.GatherParts = d.U32()
	m.HandBack = decodeBroadcastGrant(d)
}

// ReleaseRequest returns a fully canceled lock to the server.
type ReleaseRequest struct {
	Resource uint64
	LockID   uint64
}

// Encode implements Msg.
func (m *ReleaseRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U64(m.LockID)
}

// Decode implements Msg.
func (m *ReleaseRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.LockID = d.U64()
}

// DowngradeRequest converts a granted lock to a less restrictive mode
// (BW→NBW, PW→NBW or PW→PR) so conflicting requests can be early
// granted (§III-D2).
type DowngradeRequest struct {
	Resource uint64
	LockID   uint64
	NewMode  uint8
}

// Encode implements Msg.
func (m *DowngradeRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U64(m.LockID)
	e.U8(m.NewMode)
}

// Decode implements Msg.
func (m *DowngradeRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.LockID = d.U64()
	m.NewMode = d.U8()
}

// HandoffStamp is the delegation grant a lock server may attach to a
// revocation: instead of canceling back to the server, the holder
// transfers the lock directly to NextOwner over MHandoff. NewLockID and
// SN are the successor lock's identity in the server's table (the SN is
// assigned by the server at stamp time, so sequencer ordering is fixed
// before any client acts); MustFlush carries the dirty-flush obligation
// — the holder must flush its writes before transferring, exactly as it
// would before a release.
type HandoffStamp struct {
	NextOwner uint32
	NewLockID uint64
	Mode      uint8
	SN        uint64
	MustFlush bool
	// Broadcast widens the delegation to a reader cohort: the holder
	// transfers to the lead (NextOwner, also Leases[0].Owner) and the
	// lead propagates the remaining leases peer-to-peer down a
	// bounded-fanout tree. Nil for single-successor handoffs.
	Broadcast *BroadcastGrant
}

// LeaseEntry is one reader's delegated lease inside a broadcast grant:
// its owner, the successor lock's server-assigned identity, and the SN
// fixed by the sequencer at stamp time.
type LeaseEntry struct {
	Owner  uint32
	LockID uint64
	SN     uint64
}

// BroadcastGrant is the ordered reader cohort of a fan-out delegation.
// Leases are listed in queue order — entry 0 is the lead reader that
// receives the direct transfer; the rest form the propagation subtrees.
// All leases share Mode and Range (the server expands once for the
// whole run, like a batched grant).
type BroadcastGrant struct {
	Mode   uint8
	Range  extent.Extent
	Fanout uint8
	Leases []LeaseEntry
}

func encodeBroadcastGrant(e *Encoder, b *BroadcastGrant) {
	if b == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.U8(b.Mode)
	encodeExtent(e, b.Range)
	e.U8(b.Fanout)
	e.U32(uint32(len(b.Leases)))
	for i := range b.Leases {
		e.U32(b.Leases[i].Owner)
		e.U64(b.Leases[i].LockID)
		e.U64(b.Leases[i].SN)
	}
}

func decodeBroadcastGrant(d *Decoder) *BroadcastGrant {
	if !d.StrictBool() {
		return nil
	}
	b := &BroadcastGrant{}
	b.Mode = d.U8()
	b.Range = decodeExtent(d)
	b.Fanout = d.U8()
	n := d.Len32(20)
	if n > 0 {
		b.Leases = make([]LeaseEntry, n)
		for i := range b.Leases {
			b.Leases[i].Owner = d.U32()
			b.Leases[i].LockID = d.U64()
			b.Leases[i].SN = d.U64()
		}
	}
	return b
}

func encodeHandoffStamp(e *Encoder, h *HandoffStamp) {
	if h == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.U32(h.NextOwner)
	e.U64(h.NewLockID)
	e.U8(h.Mode)
	e.U64(h.SN)
	e.Bool(h.MustFlush)
	encodeBroadcastGrant(e, h.Broadcast)
}

func decodeHandoffStamp(d *Decoder) *HandoffStamp {
	if !d.StrictBool() {
		return nil
	}
	h := &HandoffStamp{}
	h.NextOwner = d.U32()
	h.NewLockID = d.U64()
	h.Mode = d.U8()
	h.SN = d.U64()
	h.MustFlush = d.StrictBool()
	h.Broadcast = decodeBroadcastGrant(d)
	return h
}

// RevokeRequest is the server→client callback asking the holder to
// cancel a cached lock. The reply (Ack) is the revocation reply that
// moves the lock to CANCELING on the server and unlocks early grant.
// A non-nil Handoff turns the revocation into a transfer order: after
// flushing (per the stamp), the holder hands the lock directly to the
// stamped next owner instead of releasing it back to the server.
type RevokeRequest struct {
	Resource uint64
	LockID   uint64
	Handoff  *HandoffStamp
}

// Encode implements Msg.
func (m *RevokeRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U64(m.LockID)
	encodeHandoffStamp(e, m.Handoff)
}

// Decode implements Msg.
func (m *RevokeRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.LockID = d.U64()
	m.Handoff = decodeHandoffStamp(d)
}

// RevokeEntry identifies one lock inside a batched revocation, with its
// optional handoff stamp.
type RevokeEntry struct {
	Resource uint64
	LockID   uint64
	Handoff  *HandoffStamp
}

// RevokeBatch is the server→client callback carrying every revocation
// currently pending for one client in a single RPC: the lock server's
// revocation batcher coalesces per destination, so a wide conflict
// costs one callback per holder instead of one per lock (DESIGN.md §9).
// The reply is a RevokeBatchAck listing the entries the client has
// processed; each acked entry has the same meaning as an individual
// RevokeRequest ack.
type RevokeBatch struct {
	Entries []RevokeEntry
}

// Encode implements Msg.
func (m *RevokeBatch) Encode(e *Encoder) {
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		e.U64(m.Entries[i].Resource)
		e.U64(m.Entries[i].LockID)
		encodeHandoffStamp(e, m.Entries[i].Handoff)
	}
}

// Decode implements Msg.
func (m *RevokeBatch) Decode(d *Decoder) {
	n := d.Len32(17)
	if n > 0 {
		m.Entries = make([]RevokeEntry, n)
		for i := range m.Entries {
			m.Entries[i].Resource = d.U64()
			m.Entries[i].LockID = d.U64()
			m.Entries[i].Handoff = decodeHandoffStamp(d)
		}
	}
}

// RevokeBatchAck is the reply to a RevokeBatch: the batched revocation
// acks. Entries absent from Acked were not processed (the client is
// shutting down mid-batch); the server treats them like a failed
// individual revocation — ack and force-release on the holder's behalf.
type RevokeBatchAck struct {
	Acked []RevokeEntry
}

// Encode implements Msg.
func (m *RevokeBatchAck) Encode(e *Encoder) {
	e.U32(uint32(len(m.Acked)))
	for i := range m.Acked {
		e.U64(m.Acked[i].Resource)
		e.U64(m.Acked[i].LockID)
	}
}

// Decode implements Msg.
func (m *RevokeBatchAck) Decode(d *Decoder) {
	n := d.Len32(16)
	if n > 0 {
		m.Acked = make([]RevokeEntry, n)
		for i := range m.Acked {
			m.Acked[i].Resource = d.U64()
			m.Acked[i].LockID = d.U64()
		}
	}
}

// HandoffRequest activates a delegated lock at its new owner: LockID is
// the successor lock's server-assigned identity (HandoffStamp.NewLockID
// / the Delegated grant's LockID). Sent client→client by the previous
// holder after its flush, or server→client when the server resolves the
// delegation itself.
type HandoffRequest struct {
	Resource uint64
	LockID   uint64
	// Acks piggybacks the sender's queued delegation acknowledgements
	// for this resource: a reader transferring to a gathering writer
	// forwards its pending acks so the writer can batch them onto its
	// next server RPC instead of each reader paying a standalone
	// MHandoffAck.
	Acks []uint64
	// Broadcast forwards the remaining reader cohort to the lead: the
	// receiver installs Leases[0] as its own lease and propagates the
	// rest down the tree via MLeasePropagate.
	Broadcast *BroadcastGrant
	// Final marks a server-sent activation: the delegation was resolved
	// server-side, so the receiver activates immediately even if it was
	// collecting multiple gather parts. Peer transfers leave it false.
	Final bool
}

// Encode implements Msg.
func (m *HandoffRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U64(m.LockID)
	e.U32(uint32(len(m.Acks)))
	for _, id := range m.Acks {
		e.U64(id)
	}
	encodeBroadcastGrant(e, m.Broadcast)
	e.Bool(m.Final)
}

// Decode implements Msg.
func (m *HandoffRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.LockID = d.U64()
	n := d.Len32(8)
	if n > 0 {
		m.Acks = make([]uint64, n)
		for i := range m.Acks {
			m.Acks[i] = d.U64()
		}
	}
	m.Broadcast = decodeBroadcastGrant(d)
	m.Final = d.Bool()
}

// HandoffAckRequest is the new owner's asynchronous confirmation that a
// delegated lock arrived: the server retires the predecessor's table
// entry and cancels the reclaim timer. Acks for already-resolved
// delegations are idempotent no-ops.
type HandoffAckRequest struct {
	Resource uint64
	LockID   uint64
	// More batches additional lock IDs acked in the same request: a
	// reader cohort's acks gathered by a writer, or a client draining a
	// backlog, confirm in one RPC instead of one per lock.
	More []uint64
}

// Encode implements Msg.
func (m *HandoffAckRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U64(m.LockID)
	e.U32(uint32(len(m.More)))
	for _, id := range m.More {
		e.U64(id)
	}
}

// Decode implements Msg.
func (m *HandoffAckRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.LockID = d.U64()
	n := d.Len32(8)
	if n > 0 {
		m.More = make([]uint64, n)
		for i := range m.More {
			m.More[i] = d.U64()
		}
	}
}

// LeasePropagate pushes a subtree of a broadcast read delegation to its
// next member: Leases[0] is the receiver's own lease; the receiver
// splits the remainder into up to Fanout subtrees and forwards each to
// its first entry's owner. Mode and Range are shared by the whole
// cohort. Duplicate deliveries are idempotent at the receiver (the
// reclaimer may race the tree and resolve a lease through MHandoff).
type LeasePropagate struct {
	Resource uint64
	Mode     uint8
	Range    extent.Extent
	Fanout   uint8
	Leases   []LeaseEntry
}

// Encode implements Msg.
func (m *LeasePropagate) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U8(m.Mode)
	encodeExtent(e, m.Range)
	e.U8(m.Fanout)
	e.U32(uint32(len(m.Leases)))
	for i := range m.Leases {
		e.U32(m.Leases[i].Owner)
		e.U64(m.Leases[i].LockID)
		e.U64(m.Leases[i].SN)
	}
}

// Decode implements Msg.
func (m *LeasePropagate) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.Mode = d.U8()
	m.Range = decodeExtent(d)
	m.Fanout = d.U8()
	n := d.Len32(20)
	if n > 0 {
		m.Leases = make([]LeaseEntry, n)
		for i := range m.Leases {
			m.Leases[i].Owner = d.U32()
			m.Leases[i].LockID = d.U64()
			m.Leases[i].SN = d.U64()
		}
	}
}

// Block is one SN-tagged extent of data in a flush or read message.
type Block struct {
	Range extent.Extent
	SN    uint64
	Data  []byte
}

// FlushRequest carries dirty client-cache blocks to a data server. Blocks
// from multiple locks may be batched; each block carries the SN of the
// lock it was written under (§IV-A).
type FlushRequest struct {
	Resource uint64
	Client   uint32
	Blocks   []Block
}

// Encode implements Msg.
func (m *FlushRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	e.U32(m.Client)
	e.U32(uint32(len(m.Blocks)))
	for i := range m.Blocks {
		encodeExtent(e, m.Blocks[i].Range)
		e.U64(m.Blocks[i].SN)
		e.Bytes32(m.Blocks[i].Data)
	}
}

// Decode implements Msg.
func (m *FlushRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.Client = d.U32()
	n := d.Len32(28)
	if n > 0 {
		m.Blocks = make([]Block, n)
		for i := range m.Blocks {
			m.Blocks[i].Range = decodeExtent(d)
			m.Blocks[i].SN = d.U64()
			m.Blocks[i].Data = d.Bytes32()
		}
	}
}

// ReadRequest fetches a byte range of a stripe resource.
type ReadRequest struct {
	Resource uint64
	Range    extent.Extent
}

// Encode implements Msg.
func (m *ReadRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	encodeExtent(e, m.Range)
}

// Decode implements Msg.
func (m *ReadRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.Range = decodeExtent(d)
}

// ReadReply returns the stored blocks covering the requested range;
// holes (never-written ranges) are omitted and read as zeros.
type ReadReply struct {
	Blocks []Block
}

// Encode implements Msg.
func (m *ReadReply) Encode(e *Encoder) {
	e.U32(uint32(len(m.Blocks)))
	for i := range m.Blocks {
		encodeExtent(e, m.Blocks[i].Range)
		e.U64(m.Blocks[i].SN)
		e.Bytes32(m.Blocks[i].Data)
	}
}

// Decode implements Msg.
func (m *ReadReply) Decode(d *Decoder) {
	n := d.Len32(28)
	if n > 0 {
		m.Blocks = make([]Block, n)
		for i := range m.Blocks {
			m.Blocks[i].Range = decodeExtent(d)
			m.Blocks[i].SN = d.U64()
			m.Blocks[i].Data = d.Bytes32()
		}
	}
}

// MinSNRequest asks the DLM service for the minimum SN among unreleased
// write locks overlapping a range — the mSN of the extent-cache cleanup
// task (§IV-B).
type MinSNRequest struct {
	Resource uint64
	Range    extent.Extent
}

// Encode implements Msg.
func (m *MinSNRequest) Encode(e *Encoder) {
	e.U64(m.Resource)
	encodeExtent(e, m.Range)
}

// Decode implements Msg.
func (m *MinSNRequest) Decode(d *Decoder) {
	m.Resource = d.U64()
	m.Range = decodeExtent(d)
}

// MinSNReply returns the mSN. When no unreleased write lock overlaps the
// range, HasLocks is false and every cached entry for the range is
// removable.
type MinSNReply struct {
	HasLocks bool
	MinSN    uint64
}

// Encode implements Msg.
func (m *MinSNReply) Encode(e *Encoder) {
	e.Bool(m.HasLocks)
	e.U64(m.MinSN)
}

// Decode implements Msg.
func (m *MinSNReply) Decode(d *Decoder) {
	m.HasLocks = d.Bool()
	m.MinSN = d.U64()
}

// CreateRequest creates a file in the namespace with a stripe layout.
type CreateRequest struct {
	Path        string
	StripeSize  int64
	StripeCount uint32
}

// Encode implements Msg.
func (m *CreateRequest) Encode(e *Encoder) {
	e.String(m.Path)
	e.I64(m.StripeSize)
	e.U32(m.StripeCount)
}

// Decode implements Msg.
func (m *CreateRequest) Decode(d *Decoder) {
	m.Path = d.String()
	m.StripeSize = d.I64()
	m.StripeCount = d.U32()
}

// OpenRequest opens, stats, or removes a file by path.
type OpenRequest struct {
	Path string
}

// Encode implements Msg.
func (m *OpenRequest) Encode(e *Encoder) { e.String(m.Path) }

// Decode implements Msg.
func (m *OpenRequest) Decode(d *Decoder) { m.Path = d.String() }

// FileReply describes a file: identifier, size, and stripe layout.
type FileReply struct {
	FID         uint64
	Size        int64
	StripeSize  int64
	StripeCount uint32
}

// Encode implements Msg.
func (m *FileReply) Encode(e *Encoder) {
	e.U64(m.FID)
	e.I64(m.Size)
	e.I64(m.StripeSize)
	e.U32(m.StripeCount)
}

// Decode implements Msg.
func (m *FileReply) Decode(d *Decoder) {
	m.FID = d.U64()
	m.Size = d.I64()
	m.StripeSize = d.I64()
	m.StripeCount = d.U32()
}

// SetSizeRequest updates a file's size register. With Truncate false the
// size only grows (the max of the current and new value, the common case
// for writes past EOF); with Truncate true it is set exactly.
type SetSizeRequest struct {
	FID      uint64
	Size     int64
	Truncate bool
}

// Encode implements Msg.
func (m *SetSizeRequest) Encode(e *Encoder) {
	e.U64(m.FID)
	e.I64(m.Size)
	e.Bool(m.Truncate)
}

// Decode implements Msg.
func (m *SetSizeRequest) Decode(d *Decoder) {
	m.FID = d.U64()
	m.Size = d.I64()
	m.Truncate = d.Bool()
}

// SizeReply returns the post-update file size.
type SizeReply struct {
	Size int64
}

// Encode implements Msg.
func (m *SizeReply) Encode(e *Encoder) { e.I64(m.Size) }

// Decode implements Msg.
func (m *SizeReply) Decode(d *Decoder) { m.Size = d.I64() }

// ListReply enumerates the namespace.
type ListReply struct {
	Paths []string
}

// Encode implements Msg.
func (m *ListReply) Encode(e *Encoder) {
	e.U32(uint32(len(m.Paths)))
	for _, p := range m.Paths {
		e.String(p)
	}
}

// Decode implements Msg.
func (m *ListReply) Decode(d *Decoder) {
	n := d.Len32(4)
	if n > 0 {
		m.Paths = make([]string, n)
		for i := range m.Paths {
			m.Paths[i] = d.String()
		}
	}
}

// LockRecord describes one granted lock a client reports during server
// recovery (§IV-C2).
type LockRecord struct {
	Resource uint64
	Client   uint32
	LockID   uint64
	Mode     uint8
	Range    extent.Extent
	SN       uint64
	State    uint8
	// Flags carries handoff-delegation state across a takeover replay
	// (DESIGN.md §13): the adopting master force-resolves reported
	// delegations the way a freeze would, instead of restoring
	// handed-off pairs it has no delegation state for.
	Flags uint8
}

// LockRecord flags.
const (
	// LockFlagDelegated marks a delegated grant whose transfer the
	// reporting client is still waiting for.
	LockFlagDelegated uint8 = 1 << iota
	// LockFlagHandedOff marks a lock its holder owes (or has already
	// sent) to a successor; the holder will never release it to the
	// server.
	LockFlagHandedOff
)

// LockReport is the client's reply to a recovery gather request.
type LockReport struct {
	Locks []LockRecord
}

// Encode implements Msg.
func (m *LockReport) Encode(e *Encoder) {
	e.U32(uint32(len(m.Locks)))
	for i := range m.Locks {
		l := &m.Locks[i]
		e.U64(l.Resource)
		e.U32(l.Client)
		e.U64(l.LockID)
		e.U8(l.Mode)
		encodeExtent(e, l.Range)
		e.U64(l.SN)
		e.U8(l.State)
		e.U8(l.Flags)
	}
}

// Decode implements Msg.
func (m *LockReport) Decode(d *Decoder) {
	n := d.Len32(47)
	if n > 0 {
		m.Locks = make([]LockRecord, n)
		for i := range m.Locks {
			l := &m.Locks[i]
			l.Resource = d.U64()
			l.Client = d.U32()
			l.LockID = d.U64()
			l.Mode = d.U8()
			l.Range = decodeExtent(d)
			l.SN = d.U64()
			l.State = d.U8()
			l.Flags = d.U8()
		}
	}
}

// HelloRequest registers a connection with a node. Clients announce a
// name; the server assigns the client identifier used in lock requests.
type HelloRequest struct {
	NodeName string
	// ClientID lets a client reuse one identity across connections to
	// multiple servers; zero asks the server to assign one.
	ClientID uint32
	// Bulk marks a data-path connection (flush/read traffic). Bulk
	// connections are not used for revocation callbacks, mirroring the
	// prototype's split between CaRT RPCs and RDMA bulk transfers.
	Bulk bool
}

// Encode implements Msg.
func (m *HelloRequest) Encode(e *Encoder) {
	e.String(m.NodeName)
	e.U32(m.ClientID)
	e.Bool(m.Bulk)
}

// Decode implements Msg.
func (m *HelloRequest) Decode(d *Decoder) {
	m.NodeName = d.String()
	m.ClientID = d.U32()
	m.Bulk = d.Bool()
}

// HelloReply confirms registration.
type HelloReply struct {
	ClientID uint32
}

// Encode implements Msg.
func (m *HelloReply) Encode(e *Encoder) { e.U32(m.ClientID) }

// Decode implements Msg.
func (m *HelloReply) Decode(d *Decoder) { m.ClientID = d.U32() }

// PartitionMapReply carries the versioned slot→lock-server routing
// table (DESIGN.md §12). Owners[s] is the index of the server
// mastering hash slot s, or -1 when the slot is currently masterless;
// Epoch orders views — a client discards any reply older than the map
// it already holds.
type PartitionMapReply struct {
	Epoch  uint64
	Owners []int32
}

// Encode implements Msg.
func (m *PartitionMapReply) Encode(e *Encoder) {
	e.U64(m.Epoch)
	e.U32(uint32(len(m.Owners)))
	for _, o := range m.Owners {
		e.U32(uint32(o))
	}
}

// Decode implements Msg.
func (m *PartitionMapReply) Decode(d *Decoder) {
	m.Epoch = d.U64()
	n := d.Len32(4)
	if n > 0 {
		m.Owners = make([]int32, n)
		for i := range m.Owners {
			m.Owners[i] = int32(d.U32())
		}
	}
}

// SlotFreezeRequest asks the migration source to freeze one slot and
// return its exported lock tables.
type SlotFreezeRequest struct {
	Slot uint32
}

// Encode implements Msg.
func (m *SlotFreezeRequest) Encode(e *Encoder) { e.U32(m.Slot) }

// Decode implements Msg.
func (m *SlotFreezeRequest) Decode(d *Decoder) { m.Slot = d.U32() }

// SlotResource is one resource's transferable state inside a
// SlotState: its unreleased locks, its sequencer position (NextSN),
// and its lifetime grant count (which drives the DLM-Lustre expansion
// threshold). Queued waiters are not transferred — they are redirected
// at freeze time and re-request at the new master.
type SlotResource struct {
	Resource uint64
	NextSN   uint64
	Grants   uint64
	Locks    []LockRecord
}

// SlotState is a frozen slot's full lock table — the payload a
// migration moves from source to target.
type SlotState struct {
	Slot      uint32
	Epoch     uint64 // the source's view epoch at freeze time
	Resources []SlotResource
}

// Encode implements Msg.
func (m *SlotState) Encode(e *Encoder) {
	e.U32(m.Slot)
	e.U64(m.Epoch)
	e.U32(uint32(len(m.Resources)))
	for i := range m.Resources {
		r := &m.Resources[i]
		e.U64(r.Resource)
		e.U64(r.NextSN)
		e.U64(r.Grants)
		e.U32(uint32(len(r.Locks)))
		for j := range r.Locks {
			l := &r.Locks[j]
			e.U64(l.Resource)
			e.U32(l.Client)
			e.U64(l.LockID)
			e.U8(l.Mode)
			encodeExtent(e, l.Range)
			e.U64(l.SN)
			e.U8(l.State)
			e.U8(l.Flags)
		}
	}
}

// Decode implements Msg.
func (m *SlotState) Decode(d *Decoder) {
	m.Slot = d.U32()
	m.Epoch = d.U64()
	n := d.Len32(28) // 3 u64 + locks length per resource, minimum
	if n > 0 {
		m.Resources = make([]SlotResource, n)
		for i := range m.Resources {
			r := &m.Resources[i]
			r.Resource = d.U64()
			r.NextSN = d.U64()
			r.Grants = d.U64()
			k := d.Len32(47)
			if k > 0 {
				r.Locks = make([]LockRecord, k)
				for j := range r.Locks {
					l := &r.Locks[j]
					l.Resource = d.U64()
					l.Client = d.U32()
					l.LockID = d.U64()
					l.Mode = d.U8()
					l.Range = decodeExtent(d)
					l.SN = d.U64()
					l.State = d.U8()
					l.Flags = d.U8()
				}
			}
		}
	}
}

// SlotInstall hands a frozen slot's state to the migration target,
// which takes mastership of the slot at the given post-transfer
// epoch.
type SlotInstall struct {
	Epoch uint64
	State SlotState
}

// Encode implements Msg.
func (m *SlotInstall) Encode(e *Encoder) {
	e.U64(m.Epoch)
	m.State.Encode(e)
}

// Decode implements Msg.
func (m *SlotInstall) Decode(d *Decoder) {
	m.Epoch = d.U64()
	m.State.Decode(d)
}

// SlotReportRequest asks a client to replay its held locks for the
// given slots only (server recovery after a lease takeover; the
// slot-filtered form of MReport). The reply is a LockReport.
type SlotReportRequest struct {
	Epoch uint64
	Slots []uint32
}

// Encode implements Msg.
func (m *SlotReportRequest) Encode(e *Encoder) {
	e.U64(m.Epoch)
	e.U32(uint32(len(m.Slots)))
	for _, s := range m.Slots {
		e.U32(s)
	}
}

// Decode implements Msg.
func (m *SlotReportRequest) Decode(d *Decoder) {
	m.Epoch = d.U64()
	n := d.Len32(4)
	if n > 0 {
		m.Slots = make([]uint32, n)
		for i := range m.Slots {
			m.Slots[i] = d.U32()
		}
	}
}
