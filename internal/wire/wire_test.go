package wire

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"ccpfs/internal/extent"
)

func roundTrip(t *testing.T, in Msg, out Msg) {
	t.Helper()
	frame := Marshal(in)
	if err := Unmarshal(frame, out); err != nil {
		t.Fatalf("Unmarshal(%T): %v", in, err)
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := NewEncoder(0)
	e.U8(200)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.Bool(true)
	e.Bool(false)
	e.Bytes32([]byte{1, 2, 3})
	e.String("héllo")

	d := NewDecoder(e.Bytes())
	if d.U8() != 200 || d.U32() != 1<<30 || d.U64() != 1<<60 || d.I64() != -42 {
		t.Fatal("numeric round trip failed")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool round trip failed")
	}
	if !bytes.Equal(d.Bytes32(), []byte{1, 2, 3}) {
		t.Fatal("bytes round trip failed")
	}
	if d.String() != "héllo" {
		t.Fatal("string round trip failed")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderTruncated(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.U64()
	if d.Err() != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", d.Err())
	}
	// Sticky: subsequent reads keep failing without panicking.
	d.U32()
	_ = d.String()
	if d.Err() != ErrTruncated {
		t.Fatal("error not sticky")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.U8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestDecoderHostileLength(t *testing.T) {
	// A frame declaring a 4 G-element collection must not allocate it.
	e := NewEncoder(0)
	e.U32(0xFFFFFFFF)
	d := NewDecoder(e.Bytes())
	if n := d.Len32(8); n != 0 || d.Err() == nil {
		t.Fatalf("Len32 = %d, err = %v; want rejection", n, d.Err())
	}
	// Same for Bytes32.
	d2 := NewDecoder(e.Bytes())
	if b := d2.Bytes32(); b != nil || d2.Err() == nil {
		t.Fatal("Bytes32 accepted hostile length")
	}
}

func TestLockRequestRoundTrip(t *testing.T) {
	in := &LockRequest{
		Resource: 0xABCDEF,
		Client:   7,
		Mode:     3,
		Range:    extent.New(4096, extent.Inf),
		Extents:  []extent.Extent{extent.New(0, 10), extent.New(20, 30)},
	}
	var out LockRequest
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(*in, out) {
		t.Fatalf("got %+v, want %+v", out, *in)
	}
}

func TestLockGrantRoundTrip(t *testing.T) {
	in := &LockGrant{
		LockID:   99,
		Mode:     2,
		Range:    extent.New(0, extent.Inf),
		SN:       12345,
		State:    1,
		Absorbed: []uint64{3, 5, 8},
	}
	var out LockGrant
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(*in, out) {
		t.Fatalf("got %+v, want %+v", out, *in)
	}
}

func TestFlushRequestRoundTrip(t *testing.T) {
	in := &FlushRequest{
		Resource: 42,
		Client:   3,
		Blocks: []Block{
			{Range: extent.New(0, 4), SN: 9, Data: []byte{1, 2, 3, 4}},
			{Range: extent.New(100, 102), SN: 10, Data: []byte{5, 6}},
		},
	}
	var out FlushRequest
	roundTrip(t, in, &out)
	if !reflect.DeepEqual(*in, out) {
		t.Fatalf("got %+v, want %+v", out, *in)
	}
}

func TestReadRoundTrip(t *testing.T) {
	req := &ReadRequest{Resource: 1, Range: extent.New(8, 16)}
	var reqOut ReadRequest
	roundTrip(t, req, &reqOut)
	if *req != reqOut {
		t.Fatalf("got %+v, want %+v", reqOut, *req)
	}
	rep := &ReadReply{Blocks: []Block{{Range: extent.New(8, 12), SN: 2, Data: []byte("abcd")}}}
	var repOut ReadReply
	roundTrip(t, rep, &repOut)
	if !reflect.DeepEqual(*rep, repOut) {
		t.Fatalf("got %+v, want %+v", repOut, *rep)
	}
}

func TestMetaMessagesRoundTrip(t *testing.T) {
	cr := &CreateRequest{Path: "/a/b", StripeSize: 1 << 20, StripeCount: 4}
	var crOut CreateRequest
	roundTrip(t, cr, &crOut)
	if *cr != crOut {
		t.Fatalf("got %+v", crOut)
	}
	fr := &FileReply{FID: 7, Size: 123, StripeSize: 1 << 20, StripeCount: 4}
	var frOut FileReply
	roundTrip(t, fr, &frOut)
	if *fr != frOut {
		t.Fatalf("got %+v", frOut)
	}
	ss := &SetSizeRequest{FID: 7, Size: 1 << 40, Truncate: true}
	var ssOut SetSizeRequest
	roundTrip(t, ss, &ssOut)
	if *ss != ssOut {
		t.Fatalf("got %+v", ssOut)
	}
}

func TestSmallMessagesRoundTrip(t *testing.T) {
	msgs := []struct{ in, out Msg }{
		{&ReleaseRequest{Resource: 1, LockID: 2}, &ReleaseRequest{}},
		{&DowngradeRequest{Resource: 1, LockID: 2, NewMode: 3}, &DowngradeRequest{}},
		{&RevokeRequest{Resource: 4, LockID: 5}, &RevokeRequest{}},
		{&MinSNRequest{Resource: 6, Range: extent.New(0, 10)}, &MinSNRequest{}},
		{&MinSNReply{HasLocks: true, MinSN: 77}, &MinSNReply{}},
		{&HelloRequest{NodeName: "n1", ClientID: 9}, &HelloRequest{}},
		{&HelloReply{ClientID: 9}, &HelloReply{}},
		{&SizeReply{Size: 1234}, &SizeReply{}},
		{&Ack{}, &Ack{}},
	}
	for _, m := range msgs {
		roundTrip(t, m.in, m.out)
		if !reflect.DeepEqual(reflect.ValueOf(m.in).Elem().Interface(),
			reflect.ValueOf(m.out).Elem().Interface()) {
			t.Fatalf("%T: got %+v, want %+v", m.in, m.out, m.in)
		}
	}
}

func TestHandoffMessagesRoundTrip(t *testing.T) {
	stamp := &HandoffStamp{NextOwner: 4, NewLockID: 77, Mode: 2, SN: 123, MustFlush: true}
	rv := &RevokeRequest{Resource: 9, LockID: 5, Handoff: stamp}
	var rvOut RevokeRequest
	roundTrip(t, rv, &rvOut)
	if rvOut.Resource != 9 || rvOut.LockID != 5 || rvOut.Handoff == nil || *rvOut.Handoff != *stamp {
		t.Fatalf("stamped revoke round trip = %+v", rvOut)
	}

	batch := &RevokeBatch{Entries: []RevokeEntry{
		{Resource: 1, LockID: 2},
		{Resource: 1, LockID: 3, Handoff: stamp},
	}}
	var batchOut RevokeBatch
	roundTrip(t, batch, &batchOut)
	if len(batchOut.Entries) != 2 || batchOut.Entries[0].Handoff != nil ||
		batchOut.Entries[1].Handoff == nil || *batchOut.Entries[1].Handoff != *stamp {
		t.Fatalf("stamped batch round trip = %+v", batchOut)
	}

	req := &LockRequest{
		Resource: 1, Client: 2, Mode: 3, Range: extent.New(0, 10),
		HandoffAcks: []uint64{40, 41},
	}
	var reqOut LockRequest
	roundTrip(t, req, &reqOut)
	if !reflect.DeepEqual(*req, reqOut) {
		t.Fatalf("got %+v, want %+v", reqOut, *req)
	}

	g := &LockGrant{LockID: 77, Mode: 2, Range: extent.New(0, 10), SN: 123, Delegated: true}
	var gOut LockGrant
	roundTrip(t, g, &gOut)
	if !reflect.DeepEqual(*g, gOut) {
		t.Fatalf("got %+v, want %+v", gOut, *g)
	}

	for _, m := range []struct{ in, out Msg }{
		{&HandoffRequest{Resource: 9, LockID: 77}, &HandoffRequest{}},
		{&HandoffAckRequest{Resource: 9, LockID: 77}, &HandoffAckRequest{}},
	} {
		roundTrip(t, m.in, m.out)
		if !reflect.DeepEqual(reflect.ValueOf(m.in).Elem().Interface(),
			reflect.ValueOf(m.out).Elem().Interface()) {
			t.Fatalf("%T: got %+v, want %+v", m.in, m.out, m.in)
		}
	}

	// Non-canonical bool bytes must not survive: the batch path
	// re-marshals decoded entries, so a 2-valued "present" byte would
	// otherwise round-trip to a different frame.
	frame := Marshal(rv)
	frame[16] = 2 // the stamp-present byte
	var bad RevokeRequest
	if err := Unmarshal(frame, &bad); err == nil {
		t.Fatal("non-canonical stamp-present byte accepted")
	}
}

// TestFanMessagesRoundTrip covers the reader fan-out extensions: the
// broadcast-widened revocation stamp, the gather grant with a pre-armed
// handback cohort, the broadcast-forwarding peer transfer, and the
// propagation-tree message itself.
func TestFanMessagesRoundTrip(t *testing.T) {
	cohort := &BroadcastGrant{
		Mode:   1,
		Range:  extent.New(0, 1<<20),
		Fanout: 2,
		Leases: []LeaseEntry{
			{Owner: 5, LockID: 80, SN: 200},
			{Owner: 6, LockID: 81, SN: 200},
			{Owner: 7, LockID: 82, SN: 200},
		},
	}

	rv := &RevokeRequest{Resource: 9, LockID: 5, Handoff: &HandoffStamp{
		NextOwner: 5, NewLockID: 80, Mode: 1, SN: 200, MustFlush: true, Broadcast: cohort,
	}}
	var rvOut RevokeRequest
	roundTrip(t, rv, &rvOut)
	if rvOut.Handoff == nil || !reflect.DeepEqual(rvOut.Handoff.Broadcast, cohort) {
		t.Fatalf("broadcast-stamped revoke round trip = %+v", rvOut)
	}

	g := &LockGrant{
		LockID: 90, Mode: 4, Range: extent.New(0, 1<<20), SN: 201,
		Delegated: true, GatherParts: 3, HandBack: cohort,
	}
	var gOut LockGrant
	roundTrip(t, g, &gOut)
	if !reflect.DeepEqual(*g, gOut) {
		t.Fatalf("gather grant round trip: got %+v, want %+v", gOut, *g)
	}

	ho := &HandoffRequest{Resource: 9, LockID: 80, Acks: []uint64{70, 71}, Broadcast: cohort}
	var hoOut HandoffRequest
	roundTrip(t, ho, &hoOut)
	if !reflect.DeepEqual(*ho, hoOut) {
		t.Fatalf("broadcast transfer round trip: got %+v, want %+v", hoOut, *ho)
	}

	lp := &LeasePropagate{
		Resource: 9, Mode: 1, Range: extent.New(0, 1<<20), Fanout: 2,
		Leases: []LeaseEntry{{Owner: 6, LockID: 81, SN: 200}, {Owner: 7, LockID: 82, SN: 200}},
	}
	var lpOut LeasePropagate
	roundTrip(t, lp, &lpOut)
	if !reflect.DeepEqual(*lp, lpOut) {
		t.Fatalf("lease propagate round trip: got %+v, want %+v", lpOut, *lp)
	}

	// A non-canonical cohort-present byte must not survive: the batch
	// and forwarding paths re-marshal decoded messages.
	frame := Marshal(&HandoffRequest{Resource: 9, LockID: 80})
	frame[len(frame)-2] = 2 // cohort-present byte sits just before Final
	var bad HandoffRequest
	if err := Unmarshal(frame, &bad); err == nil {
		t.Fatal("non-canonical cohort-present byte accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var g LockGrant
	if err := Unmarshal([]byte{1, 2, 3}, &g); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

// Property: LockRequest round-trips for arbitrary field values.
func TestQuickLockRequestRoundTrip(t *testing.T) {
	f := func(res uint64, cl uint32, mode uint8, start, length uint32) bool {
		in := &LockRequest{
			Resource: res,
			Client:   cl,
			Mode:     mode,
			Range:    extent.Span(int64(start), int64(length)+1),
		}
		var out LockRequest
		if err := Unmarshal(Marshal(in), &out); err != nil {
			return false
		}
		return reflect.DeepEqual(*in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary payload bytes survive a flush round trip intact.
func TestQuickFlushDataIntegrity(t *testing.T) {
	f := func(data []byte, sn uint64) bool {
		in := &FlushRequest{Resource: 1, Blocks: []Block{{
			Range: extent.Span(0, int64(len(data))+1), SN: sn, Data: data,
		}}}
		var out FlushRequest
		if err := Unmarshal(Marshal(in), &out); err != nil {
			return false
		}
		return bytes.Equal(out.Blocks[0].Data, data) && out.Blocks[0].SN == sn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalFlush64K(b *testing.B) {
	data := make([]byte, 64<<10)
	m := &FlushRequest{Resource: 1, Blocks: []Block{{Range: extent.Span(0, int64(len(data))), SN: 1, Data: data}}}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Marshal(m)
	}
}

func BenchmarkUnmarshalFlush64K(b *testing.B) {
	data := make([]byte, 64<<10)
	frame := Marshal(&FlushRequest{Resource: 1, Blocks: []Block{{Range: extent.Span(0, int64(len(data))), SN: 1, Data: data}}})
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		var out FlushRequest
		if err := Unmarshal(frame, &out); err != nil {
			b.Fatal(err)
		}
	}
}
