// Package sim models the hardware of the paper's testbed — network RTT,
// NIC bandwidth, disk bandwidth and latency, and lock-server RPC
// processing rate (Table I) — so the 96-node evaluation can run in a
// single process while preserving the performance *ratios* Equation (1)
// of the paper shows the results depend on.
//
// Every shared device (a server's disk, a link's NIC) is a serialized
// resource: concurrent users queue behind each other, which is what makes
// flush bandwidth the bottleneck under contention exactly as in §II-C.
package sim

import (
	"context"
	"sync"
	"time"
)

// Hardware describes the simulated machine and fabric. A zero value in
// any field disables that delay (infinite speed), which tests use to keep
// pure protocol checks fast.
type Hardware struct {
	// RTT is the network round-trip time between any two nodes. Each
	// message in flight is delayed RTT/2.
	RTT time.Duration
	// NetBandwidth is the per-link bandwidth in bytes/second.
	NetBandwidth float64
	// DiskBandwidth is the per-server storage bandwidth in bytes/second.
	DiskBandwidth float64
	// DiskLatency is the fixed per-operation storage latency.
	DiskLatency time.Duration
	// ServerOPS caps the lock-server RPC processing rate (ops/second).
	ServerOPS float64
	// CacheBandwidth is the client memory-cache copy speed in
	// bytes/second; it bounds how fast writes land in the client cache.
	CacheBandwidth float64
	// Clock is the time source every simulated delay runs on. The zero
	// value is the wall clock; a virtual run sets a VClock here and the
	// whole fabric (NICs, disks, limiters, daemons) inherits it.
	Clock Clock
}

// TableI returns the paper's Table I parameters scaled down by factor
// scale (delays multiplied by scale, bandwidths divided by scale), so a
// scale of 1 reproduces the published numbers and larger scales keep
// benchmark wall-clock time reasonable while preserving every ratio.
//
// Paper values: OPS = 1e7 op/s (the evaluation's CaRT stack measured
// 213 kOPS; we use that, since it is what the results were produced
// with), RTT = 1 µs-class IB (we use 10 µs, a conservative verbs+rxm
// figure), B_net = 12.5 GB/s, B_disk = 3 GB/s.
func TableI(scale float64) Hardware {
	if scale <= 0 {
		scale = 1
	}
	return Hardware{
		RTT:            time.Duration(10e3 * scale * float64(time.Nanosecond)), // 10 µs at scale 1
		NetBandwidth:   12.5e9 / scale,
		DiskBandwidth:  3e9 / scale,
		DiskLatency:    time.Duration(20e3 * scale * float64(time.Nanosecond)),
		ServerOPS:      213e3 / scale,
		CacheBandwidth: 20e9 / scale,
	}
}

// Fast returns a hardware model with no simulated delays, for functional
// tests where only protocol behaviour matters.
func Fast() Hardware { return Hardware{} }

// TransferTime returns the time bytes take at bw bytes/second, or zero
// when bw is unlimited.
func TransferTime(bytes int64, bw float64) time.Duration {
	if bw <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

// Device is a serialized shared resource (a disk, a NIC, a service
// thread pool of depth one). Users call Use, which blocks for the
// simulated service time including queueing behind earlier users — the
// property that makes data flushing the §II-C bottleneck.
type Device struct {
	mu   sync.Mutex
	next time.Time
	clk  Clock
}

// SetClock points the device at a (virtual) clock. Call before first
// use; the zero clock is the wall clock.
func (dev *Device) SetClock(c Clock) { dev.clk = c }

// reserve books d of device time starting no earlier than now and
// returns the completion time. The reservation is unconditional: once
// made, the device stays busy through it whether or not the caller
// waits it out (§II-C — a transmission committed to the link occupies
// the link even if the sender gives up on it).
func (dev *Device) reserve(d time.Duration) time.Time {
	now := dev.clk.Now()
	dev.mu.Lock()
	start := dev.next
	if start.Before(now) {
		start = now
	}
	done := start.Add(d)
	dev.next = done
	dev.mu.Unlock()
	return done
}

// Use occupies the device for d of service time, queueing behind any
// earlier in-flight use, and blocks until the simulated completion time.
// It is a no-op when d <= 0.
func (dev *Device) Use(d time.Duration) {
	if dev == nil || d <= 0 {
		return
	}
	done := dev.reserve(d)
	dev.clk.SleepUntil(context.Background(), done)
}

// UseCtx is Use bounded by ctx. Reservation-vs-cancel semantics,
// explicitly: the device time is reserved either way — even when ctx
// is already canceled on entry — because the transmission is already
// committed to the link, and reserved-but-abandoned time still delays
// later users. Only the *wait* is cancelable: the caller stops waiting
// and gets ctx's error as soon as it fires, including before any
// sleep when the cancel raced ahead of the call.
func (dev *Device) UseCtx(ctx context.Context, d time.Duration) error {
	if dev == nil || d <= 0 {
		return ctx.Err()
	}
	done := dev.reserve(d)
	if err := ctx.Err(); err != nil {
		return err
	}
	return dev.clk.SleepUntil(ctx, done)
}

// UseBytes occupies the device for bytes at bw bytes/second plus fixed
// latency lat.
func (dev *Device) UseBytes(bytes int64, bw float64, lat time.Duration) {
	dev.Use(TransferTime(bytes, bw) + lat)
}

// UseBytesCtx is UseBytes bounded by ctx.
func (dev *Device) UseBytesCtx(ctx context.Context, bytes int64, bw float64, lat time.Duration) error {
	return dev.UseCtx(ctx, TransferTime(bytes, bw)+lat)
}

// SleepUntil blocks until deadline or until ctx fires, returning ctx's
// error in the latter case. A past deadline returns ctx.Err()
// immediately (nil when the context is still live).
func SleepUntil(ctx context.Context, deadline time.Time) error {
	d := time.Until(deadline)
	if d <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Busy returns how far in the future the device is already committed, a
// coarse backlog indicator used by flush daemons to pace themselves.
func (dev *Device) Busy() time.Duration {
	if dev == nil {
		return 0
	}
	now := dev.clk.Now()
	dev.mu.Lock()
	defer dev.mu.Unlock()
	return dev.next.Sub(now)
}

// RateLimiter enforces an operations-per-second cap, modelling the lock
// server's bounded RPC processing rate (OPS in Table I).
type RateLimiter struct {
	mu       sync.Mutex
	interval time.Duration
	next     time.Time
	clk      Clock
}

// SetClock points the limiter at a (virtual) clock. Call before first
// use; the zero clock is the wall clock.
func (r *RateLimiter) SetClock(c Clock) {
	if r != nil {
		r.clk = c
	}
}

// NewRateLimiter returns a limiter admitting ops operations per second,
// or an unlimited one when ops <= 0.
func NewRateLimiter(ops float64) *RateLimiter {
	if ops <= 0 {
		return &RateLimiter{}
	}
	return &RateLimiter{interval: time.Duration(float64(time.Second) / ops)}
}

// Wait blocks until the caller's operation is admitted.
func (r *RateLimiter) Wait() {
	if r == nil || r.interval == 0 {
		return
	}
	now := r.clk.Now()
	r.mu.Lock()
	start := r.next
	if start.Before(now) {
		start = now
	}
	r.next = start.Add(r.interval)
	r.mu.Unlock()
	r.clk.SleepUntil(context.Background(), start)
}

// WaitCtx is Wait bounded by ctx: the slot is consumed either way, but
// the caller stops queueing and gets ctx's error when it fires first.
func (r *RateLimiter) WaitCtx(ctx context.Context) error {
	if r == nil || r.interval == 0 {
		return ctx.Err()
	}
	now := r.clk.Now()
	r.mu.Lock()
	start := r.next
	if start.Before(now) {
		start = now
	}
	r.next = start.Add(r.interval)
	r.mu.Unlock()
	return r.clk.SleepUntil(ctx, start)
}
