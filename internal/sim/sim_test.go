package sim

import (
	"sync"
	"testing"
	"time"
)

func TestTransferTime(t *testing.T) {
	if d := TransferTime(1e9, 1e9); d != time.Second {
		t.Fatalf("1 GB at 1 GB/s = %v, want 1s", d)
	}
	if d := TransferTime(100, 0); d != 0 {
		t.Fatalf("unlimited bandwidth must cost nothing, got %v", d)
	}
	if d := TransferTime(0, 1e9); d != 0 {
		t.Fatalf("zero bytes must cost nothing, got %v", d)
	}
}

func TestTableIScaling(t *testing.T) {
	h1 := TableI(1)
	h10 := TableI(10)
	if h10.RTT != 10*h1.RTT {
		t.Fatalf("RTT scaling wrong: %v vs %v", h1.RTT, h10.RTT)
	}
	if h10.DiskBandwidth*10 != h1.DiskBandwidth {
		t.Fatalf("disk bandwidth scaling wrong")
	}
	// The crucial invariant: scaling must preserve the ratio between the
	// flush term and the RTT term of Equation (1).
	d := int64(1 << 20)
	r1 := float64(TransferTime(d, h1.DiskBandwidth)) / float64(h1.RTT)
	r10 := float64(TransferTime(d, h10.DiskBandwidth)) / float64(h10.RTT)
	if r1 < r10*0.99 || r1 > r10*1.01 {
		t.Fatalf("flush/RTT ratio not preserved: %v vs %v", r1, r10)
	}
	if h := TableI(0); h.RTT != TableI(1).RTT {
		t.Fatal("non-positive scale must default to 1")
	}
}

func TestFastIsFree(t *testing.T) {
	h := Fast()
	var dev Device
	start := time.Now()
	dev.UseBytes(1<<30, h.DiskBandwidth, h.DiskLatency)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("Fast hardware must not sleep")
	}
}

func TestDeviceSerializes(t *testing.T) {
	var dev Device
	const users = 8
	const each = 5 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev.Use(each)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < users*each {
		t.Fatalf("device did not serialize: %d users × %v finished in %v", users, each, elapsed)
	}
}

func TestDeviceNilAndZero(t *testing.T) {
	var dev *Device
	dev.Use(time.Hour) // must not block or panic
	if dev.Busy() != 0 {
		t.Fatal("nil device reported backlog")
	}
	var d2 Device
	d2.Use(0)
	d2.Use(-time.Second)
}

func TestDeviceBusy(t *testing.T) {
	var dev Device
	go dev.Use(50 * time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	if dev.Busy() <= 0 {
		t.Fatal("device with in-flight work reported idle")
	}
}

func TestRateLimiter(t *testing.T) {
	// 1000 ops/sec => 20 ops should take >= ~19ms.
	r := NewRateLimiter(1000)
	start := time.Now()
	for i := 0; i < 20; i++ {
		r.Wait()
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("20 ops at 1000 op/s finished in %v", elapsed)
	}
}

func TestRateLimiterUnlimited(t *testing.T) {
	r := NewRateLimiter(0)
	start := time.Now()
	for i := 0; i < 100000; i++ {
		r.Wait()
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("unlimited limiter throttled")
	}
	var nilR *RateLimiter
	nilR.Wait() // must not panic
}

func TestRateLimiterConcurrent(t *testing.T) {
	r := NewRateLimiter(2000)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				r.Wait()
			}
		}()
	}
	wg.Wait()
	// 40 ops at 2000 op/s >= ~19ms regardless of caller count.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("concurrent limiter admitted too fast: %v", elapsed)
	}
}
