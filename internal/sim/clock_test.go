package sim

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestVClockOrdering: sleeps wake in timestamp order regardless of
// spawn order, and virtual time advances without wall time passing.
func TestVClockOrdering(t *testing.T) {
	v := NewVClock(1)
	clk := Virtual(v)
	var mu sync.Mutex
	var order []string
	wallStart := time.Now()
	v.Run(func() {
		start := clk.Now()
		g := NewGroup(clk)
		for _, d := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
			d := d
			g.Go(func() {
				clk.Sleep(d)
				mu.Lock()
				order = append(order, d.String())
				mu.Unlock()
			})
		}
		g.Wait()
		if got := clk.Since(start); got != 30*time.Second {
			t.Errorf("virtual elapsed = %v, want 30s", got)
		}
	})
	if wall := time.Since(wallStart); wall > 5*time.Second {
		t.Errorf("wall elapsed = %v for 30s of virtual time", wall)
	}
	want := []string{"10s", "20s", "30s"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

// TestVClockAfterFuncStop: a stopped timer never fires; an unstopped
// one fires at its timestamp.
func TestVClockAfterFuncStop(t *testing.T) {
	v := NewVClock(1)
	clk := Virtual(v)
	var fired, stopped bool
	v.Run(func() {
		tm := clk.AfterFunc(5*time.Second, func() { stopped = true })
		clk.AfterFunc(10*time.Second, func() { fired = true })
		clk.Sleep(time.Second)
		if !tm.Stop() {
			t.Error("Stop on pending timer = false")
		}
		clk.Sleep(20 * time.Second)
	})
	if stopped {
		t.Error("stopped timer fired")
	}
	if !fired {
		t.Error("live timer did not fire")
	}
}

// TestVClockWaitWakeup: keyed waits wake in FIFO order; timed waits
// report timeouts.
func TestVClockWaitWakeup(t *testing.T) {
	v := NewVClock(1)
	clk := Virtual(v)
	key := new(int)
	var order []int
	v.Run(func() {
		g := NewGroup(clk)
		for i := 0; i < 3; i++ {
			i := i
			g.Go(func() {
				clk.Sleep(time.Duration(i+1) * time.Second) // park in order 0,1,2
				if r := v.WaitOn(key); r != WakeKey {
					t.Errorf("waiter %d: reason %v", i, r)
				}
				order = append(order, i)
			})
		}
		clk.Sleep(10 * time.Second)
		v.Wakeup(key)
		g.Wait()

		if r := v.WaitOnUntil(key, clk.Now().Add(3*time.Second)); r != WakeTimeout {
			t.Errorf("timed wait reason = %v, want WakeTimeout", r)
		}
	})
	for i := range order {
		if order[i] != i {
			t.Fatalf("wake order %v, want FIFO", order)
		}
	}
}

// TestVClockDeterminism: the same program produces the same event
// interleaving on every run.
func TestVClockDeterminism(t *testing.T) {
	trace := func() string {
		v := NewVClock(42)
		clk := Virtual(v)
		var mu sync.Mutex
		out := ""
		v.Run(func() {
			g := NewGroup(clk)
			for i := 0; i < 8; i++ {
				i := i
				g.Go(func() {
					for j := 0; j < 5; j++ {
						clk.Sleep(time.Duration(v.Int63n(1000)) * time.Millisecond)
						mu.Lock()
						out += fmt.Sprintf("%d@%v;", i, clk.Since(v.base))
						mu.Unlock()
					}
				})
			}
			g.Wait()
		})
		return out
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("two identical seeded runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestDeviceReservedTimeDelaysLaterUsers: §II-C queueing — a canceled
// UseCtx still occupies the device, so a later user queues behind the
// abandoned reservation. Covers the reservation-vs-cancel semantics on
// both the already-canceled fast path and the normal path.
func TestDeviceReservedTimeDelaysLaterUsers(t *testing.T) {
	v := NewVClock(1)
	clk := Virtual(v)
	v.Run(func() {
		var dev Device
		dev.SetClock(clk)

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		// Already-canceled caller: must not wait, but must reserve.
		start := clk.Now()
		if err := dev.UseCtx(ctx, 10*time.Second); err != context.Canceled {
			t.Fatalf("UseCtx on canceled ctx = %v, want context.Canceled", err)
		}
		if waited := clk.Since(start); waited != 0 {
			t.Fatalf("canceled UseCtx waited %v virtual time", waited)
		}
		if busy := dev.Busy(); busy != 10*time.Second {
			t.Fatalf("device busy = %v after abandoned reservation, want 10s", busy)
		}
		// The next user queues behind the abandoned time.
		dev.Use(time.Second)
		if got := clk.Since(start); got != 11*time.Second {
			t.Fatalf("later user finished after %v, want 11s (10s abandoned + 1s own)", got)
		}
	})
}

// TestDeviceReservedTimeDelaysLaterUsersReal: same contract on the
// wall clock, at millisecond scale.
func TestDeviceReservedTimeDelaysLaterUsersReal(t *testing.T) {
	var dev Device
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := dev.UseCtx(ctx, 50*time.Millisecond); err != context.Canceled {
		t.Fatalf("UseCtx on canceled ctx = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 20*time.Millisecond {
		t.Fatalf("canceled UseCtx blocked for %v", waited)
	}
	dev.Use(10 * time.Millisecond)
	if got := time.Since(start); got < 50*time.Millisecond {
		t.Fatalf("later user finished after %v, want >= 50ms (abandoned reservation)", got)
	}
}

// TestVClockExitReleasesParked: after Run's body returns, parked
// goroutines are released into real time instead of leaking.
func TestVClockExitReleasesParked(t *testing.T) {
	v := NewVClock(1)
	clk := Virtual(v)
	released := make(chan struct{})
	v.Run(func() {
		clk.Go(func() {
			v.WaitOn(released) // never woken inside the run
			close(released)
		})
		clk.Sleep(time.Second)
	})
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("parked goroutine not released at exit")
	}
}
