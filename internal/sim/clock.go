// Discrete-event virtual time (DESIGN.md §15). A VClock replaces the
// wall clock for a whole simulated cluster: every sleep, timer, and
// device reservation becomes an event on a min-heap keyed by
// (virtual time, creation sequence), and the logical clock jumps to
// the next event's timestamp only when no simulation goroutine is
// runnable — the goroutine-quiescence rule. Runs are deterministic:
// the scheduler is cooperative and token-serialized, so exactly one
// simulation goroutine executes at any instant and every interleaving
// is a pure function of the event order, which is itself a pure
// function of the seed and the workload.
//
// The contract call sites must keep:
//
//   - every goroutine that participates in virtual time is spawned
//     through Clock.Go (or transitively from one that was);
//   - every blocking operation is mediated: block via WaitOn/
//     WaitOnUntil/Sleep/SleepUntil, and every state change another
//     goroutine may be parked on is followed by Clock.Wakeup(key);
//   - nothing reads the wall clock on a simulated path (time.Now,
//     time.Sleep, raw time.Timer) — Clock.Now and friends only.
//
// Check-then-park is atomic for free: a running goroutine holds the
// token, so between testing a condition and parking on its key no
// other simulation goroutine can slip in a wakeup.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a value handle over either the wall clock (zero value) or
// a shared virtual clock. Components embed one by value; the zero
// value behaves exactly like the pre-virtual-time code did.
type Clock struct{ v *VClock }

// Virtual reports whether the clock is a virtual one.
func (c Clock) Virtual() bool { return c.v != nil }

// V returns the underlying virtual clock, or nil on a wall clock.
func (c Clock) V() *VClock { return c.v }

// Now returns the current (virtual or wall) time.
func (c Clock) Now() time.Time {
	if c.v != nil {
		return c.v.Now()
	}
	return time.Now()
}

// Since returns the time elapsed since t on this clock.
func (c Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// Until returns the duration until t on this clock.
func (c Clock) Until(t time.Time) time.Duration { return t.Sub(c.Now()) }

// Sleep pauses the calling goroutine for d of clock time.
func (c Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.v != nil && c.v.sleep(d) {
		return
	}
	time.Sleep(d)
}

// SleepUntil blocks until deadline or until ctx fires, returning ctx's
// error in the latter case. On a virtual clock the wait is an event:
// cancellation cannot interrupt it mid-wait (the wait costs no wall
// time), but a context already canceled on entry returns immediately.
func (c Clock) SleepUntil(ctx context.Context, deadline time.Time) error {
	if c.v != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.v.sleepUntil(deadline) {
			return nil
		}
	}
	return SleepUntil(ctx, deadline)
}

// SleepCtx sleeps d and reports whether ctx is still live — the shape
// every periodic daemon loop wants: `for clk.SleepCtx(ctx, iv) { tick }`.
func (c Clock) SleepCtx(ctx context.Context, d time.Duration) bool {
	if c.v != nil {
		if ctx.Err() != nil {
			return false
		}
		if c.v.sleep(d) {
			return ctx.Err() == nil
		}
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Go runs f in a new goroutine tracked by the clock. On a wall clock
// (or after the virtual run ended) it is a plain `go f()`.
func (c Clock) Go(f func()) {
	if c.v != nil && c.v.Go(f) {
		return
	}
	go f()
}

// Wakeup readies every goroutine parked on key. A no-op on a wall
// clock, so wake sites can call it unconditionally.
func (c Clock) Wakeup(key any) {
	if c.v != nil {
		c.v.Wakeup(key)
	}
}

// AfterFunc runs f after d of clock time, in its own goroutine.
func (c Clock) AfterFunc(d time.Duration, f func()) *ClockTimer {
	if c.v != nil {
		if t := c.v.afterFunc(d, f); t != nil {
			return t
		}
	}
	return &ClockTimer{realT: time.AfterFunc(d, f)}
}

// ClockTimer is the AfterFunc handle for either clock flavor.
type ClockTimer struct {
	v     *VClock
	ev    *event
	realT *time.Timer
}

// Stop cancels the timer; it reports whether the timer was still
// pending. A fired virtual callback is never un-run.
func (t *ClockTimer) Stop() bool {
	if t == nil {
		return false
	}
	if t.realT != nil {
		return t.realT.Stop()
	}
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	live := !t.ev.dead && !t.ev.fired
	t.ev.dead = true
	return live
}

// WakeReason says why a virtual wait returned.
type WakeReason uint8

const (
	// WakeKey: a Wakeup on the wait's key.
	WakeKey WakeReason = iota
	// WakeTimeout: the wait's deadline arrived.
	WakeTimeout
	// WakeExited: the virtual run ended (Exit); the caller must fall
	// back to its real-time blocking path.
	WakeExited
)

const (
	stateParked = iota
	stateReady
	stateRun
)

// vg is one parked-or-ready continuation. A fresh one is allocated per
// park (and per spawned goroutine), so no state survives a wake.
type vg struct {
	wake   chan struct{}
	state  uint8
	reason WakeReason
	key    any    // set while parked on a key
	ev     *event // set while parked with a deadline
}

// event is a heap entry: wake g (a sleeper/timed wait) or spawn fn (an
// AfterFunc) at virtual time at. seq breaks timestamp ties in creation
// order, which keeps simultaneous events deterministic.
type event struct {
	at    int64
	seq   uint64
	g     *vg
	fn    func()
	dead  bool
	fired bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// VClock is a deterministic discrete-event scheduler. Construct with
// NewVClock, wrap components' Clock fields via Virtual(), drive the
// whole simulation inside Run.
type VClock struct {
	base  time.Time
	nowNs atomic.Int64

	mu     sync.Mutex
	seq    uint64
	evq    eventQueue
	runq   []*vg
	parked map[any][]*vg
	ngo    int
	exited bool

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewVClock returns a virtual clock seeded for deterministic
// randomness. The virtual epoch is fixed (not wall-derived) so that
// absolute timestamps are reproducible across runs.
func NewVClock(seed int64) *VClock {
	return &VClock{
		base:   time.Unix(1_000_000_000, 0),
		parked: make(map[any][]*vg),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Virtual wraps v as a Clock handle (nil gives the wall clock).
func Virtual(v *VClock) Clock { return Clock{v: v} }

// Now returns the current virtual time.
func (v *VClock) Now() time.Time { return v.base.Add(time.Duration(v.nowNs.Load())) }

// Rand returns the run's seeded random source. Callers must only use
// it from simulation goroutines (it is mutex-guarded, but draw order
// is only deterministic under the run token).
func (v *VClock) Rand() *rand.Rand { return v.rng }

// Int63n draws from the seeded source.
func (v *VClock) Int63n(n int64) int64 {
	v.rngMu.Lock()
	defer v.rngMu.Unlock()
	return v.rng.Int63n(n)
}

// Run executes f as the root simulation goroutine and blocks until it
// returns, then ends the virtual run: the clock flips to passthrough
// mode and every still-parked goroutine is released to real time, so
// ordinary teardown (Close/Shutdown) needs no mediation. Everything
// the run's output depends on must be captured inside f.
func (v *VClock) Run(f func()) {
	done := make(chan struct{})
	v.mu.Lock()
	v.ngo++
	g := &vg{wake: make(chan struct{}, 1), state: stateReady}
	v.runq = append(v.runq, g)
	go func() {
		<-g.wake
		f()
		v.exitAll()
		close(done)
	}()
	v.yieldLocked()
	<-done
}

// Exited reports whether the virtual run has ended.
func (v *VClock) Exited() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.exited
}

// exitAll ends the run: wake every parked and ready goroutine into
// real-time execution. Called by the root when f returns, with the
// root still holding the run token, so no further virtual events fire
// and the end of the run is deterministic.
func (v *VClock) exitAll() {
	v.mu.Lock()
	v.exited = true
	var wake []*vg
	wake = append(wake, v.runq...)
	v.runq = nil
	for _, gs := range v.parked {
		for _, g := range gs {
			g.state = stateReady
			wake = append(wake, g)
		}
	}
	v.parked = make(map[any][]*vg)
	for _, ev := range v.evq {
		if g := ev.g; g != nil && g.state == stateParked {
			g.state = stateReady
			wake = append(wake, g)
		}
		ev.dead = true
	}
	v.evq = nil
	v.mu.Unlock()
	for _, g := range wake {
		g.reason = WakeExited
		select {
		case g.wake <- struct{}{}:
		default:
		}
	}
}

// Go spawns f as a tracked simulation goroutine, runnable after the
// spawner next yields. Reports false once the run has ended (the
// caller falls back to `go f()`).
func (v *VClock) Go(f func()) bool {
	v.mu.Lock()
	if v.exited {
		v.mu.Unlock()
		return false
	}
	v.spawnLocked(f)
	v.mu.Unlock()
	return true
}

func (v *VClock) spawnLocked(f func()) {
	v.ngo++
	g := &vg{wake: make(chan struct{}, 1), state: stateReady}
	v.runq = append(v.runq, g)
	go func() {
		<-g.wake
		f()
		v.goDone() // no-op once the run has ended
	}()
}

// goDone retires a tracked goroutine and hands the token on.
func (v *VClock) goDone() {
	v.mu.Lock()
	if v.exited {
		v.mu.Unlock()
		return
	}
	v.ngo--
	v.yieldLocked()
}

// WaitOn parks the caller until Wakeup(key) or the end of the run.
func (v *VClock) WaitOn(key any) WakeReason { return v.waitOn(key, -1) }

// WaitOnUntil is WaitOn bounded by a deadline in virtual time.
func (v *VClock) WaitOnUntil(key any, deadline time.Time) WakeReason {
	return v.waitOn(key, deadline.Sub(v.base).Nanoseconds())
}

func (v *VClock) waitOn(key any, deadlineNs int64) WakeReason {
	v.mu.Lock()
	if v.exited {
		v.mu.Unlock()
		return WakeExited
	}
	if deadlineNs >= 0 && deadlineNs <= v.nowNs.Load() {
		v.mu.Unlock()
		return WakeTimeout
	}
	g := &vg{wake: make(chan struct{}, 1), state: stateParked, key: key}
	if key != nil {
		v.parked[key] = append(v.parked[key], g)
	}
	if deadlineNs >= 0 {
		g.ev = v.pushEventLocked(deadlineNs, g, nil)
	}
	v.yieldLocked()
	<-g.wake
	return g.reason
}

// sleep parks the caller for d of virtual time; false once exited.
func (v *VClock) sleep(d time.Duration) bool {
	v.mu.Lock()
	if v.exited {
		v.mu.Unlock()
		return false
	}
	if d <= 0 {
		v.mu.Unlock()
		return true
	}
	g := &vg{wake: make(chan struct{}, 1), state: stateParked}
	g.ev = v.pushEventLocked(v.nowNs.Load()+d.Nanoseconds(), g, nil)
	v.yieldLocked()
	<-g.wake
	return true
}

func (v *VClock) sleepUntil(deadline time.Time) bool {
	v.mu.Lock()
	if v.exited {
		v.mu.Unlock()
		return false
	}
	ns := deadline.Sub(v.base).Nanoseconds()
	if ns <= v.nowNs.Load() {
		v.mu.Unlock()
		return true
	}
	g := &vg{wake: make(chan struct{}, 1), state: stateParked}
	g.ev = v.pushEventLocked(ns, g, nil)
	v.yieldLocked()
	<-g.wake
	return true
}

func (v *VClock) afterFunc(d time.Duration, f func()) *ClockTimer {
	v.mu.Lock()
	if v.exited {
		v.mu.Unlock()
		return nil
	}
	if d < 0 {
		d = 0
	}
	ev := v.pushEventLocked(v.nowNs.Load()+d.Nanoseconds(), nil, f)
	v.mu.Unlock()
	return &ClockTimer{v: v, ev: ev}
}

// Wakeup readies every goroutine parked on key, in park order. The
// caller keeps running; the woken goroutines queue behind it.
func (v *VClock) Wakeup(key any) {
	v.mu.Lock()
	gs := v.parked[key]
	if len(gs) > 0 {
		delete(v.parked, key)
		for _, g := range gs {
			if g.state == stateParked {
				v.readyLocked(g, WakeKey)
			}
		}
	}
	v.mu.Unlock()
}

func (v *VClock) readyLocked(g *vg, why WakeReason) {
	g.state = stateReady
	g.reason = why
	g.key = nil
	if g.ev != nil {
		g.ev.dead = true
		g.ev = nil
	}
	v.runq = append(v.runq, g)
}

func (v *VClock) pushEventLocked(at int64, g *vg, fn func()) *event {
	v.seq++
	ev := &event{at: at, seq: v.seq, g: g, fn: fn}
	heap.Push(&v.evq, ev)
	return ev
}

// yieldLocked hands the run token to the next runnable goroutine,
// advancing virtual time over the event heap when none is ready.
// Called with v.mu held; releases it.
func (v *VClock) yieldLocked() {
	for {
		if len(v.runq) > 0 {
			g := v.runq[0]
			copy(v.runq, v.runq[1:])
			v.runq = v.runq[:len(v.runq)-1]
			g.state = stateRun
			g.wake <- struct{}{}
			v.mu.Unlock()
			return
		}
		ev := v.popEventLocked()
		if ev == nil {
			v.stallLocked() // unlocks
			return
		}
		if ev.at > v.nowNs.Load() {
			v.nowNs.Store(ev.at)
		}
		ev.fired = true
		if ev.g != nil {
			if ev.g.state == stateParked {
				if ev.g.key != nil {
					v.dropParkedLocked(ev.g)
				}
				ev.g.ev = nil
				v.readyLocked(ev.g, WakeTimeout)
			}
		} else if ev.fn != nil {
			v.spawnLocked(ev.fn)
		}
	}
}

func (v *VClock) popEventLocked() *event {
	for len(v.evq) > 0 {
		ev := heap.Pop(&v.evq).(*event)
		if ev.dead {
			continue
		}
		return ev
	}
	return nil
}

func (v *VClock) dropParkedLocked(g *vg) {
	gs := v.parked[g.key]
	for i, p := range gs {
		if p == g {
			gs = append(gs[:i], gs[i+1:]...)
			break
		}
	}
	if len(gs) == 0 {
		delete(v.parked, g.key)
	} else {
		v.parked[g.key] = gs
	}
}

// stallLocked fires when no goroutine is runnable and no event is
// pending while tracked goroutines still exist — a lost wakeup or an
// unmediated block. Deadlocking silently would be worse: dump state.
func (v *VClock) stallLocked() {
	if v.ngo == 0 {
		// Every tracked goroutine finished; the run is idle (the root
		// has returned or is about to). Nothing to schedule.
		v.mu.Unlock()
		return
	}
	keys := make(map[string]int)
	parked := 0
	for k, gs := range v.parked {
		keys[fmt.Sprintf("%T", k)] += len(gs)
		parked += len(gs)
	}
	msg := fmt.Sprintf("sim: virtual clock stalled at %v: %d tracked goroutines, %d parked on keys %v, empty event heap — an unmediated block or a missing Wakeup",
		time.Duration(v.nowNs.Load()), v.ngo, parked, keys)
	v.mu.Unlock()
	panic(msg)
}

// Group is a clock-aware fan-out barrier: sync.WaitGroup semantics
// that a virtual run can mediate. On a wall clock it is exactly
// Add/go/Wait.
type Group struct {
	clk Clock
	mu  sync.Mutex
	n   int
	wg  sync.WaitGroup
}

// NewGroup returns a barrier on clk.
func NewGroup(clk Clock) *Group { return &Group{clk: clk} }

// Go runs f in a tracked goroutine counted by the barrier.
func (g *Group) Go(f func()) {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
	g.wg.Add(1)
	g.clk.Go(func() {
		defer g.wg.Done()
		f()
		g.mu.Lock()
		g.n--
		last := g.n == 0
		g.mu.Unlock()
		if last {
			g.clk.Wakeup(g)
		}
	})
}

// Wait blocks until every spawned f returned.
func (g *Group) Wait() {
	if v := g.clk.V(); v != nil {
		for {
			g.mu.Lock()
			n := g.n
			g.mu.Unlock()
			if n == 0 {
				return
			}
			if v.WaitOn(g) == WakeExited {
				break
			}
		}
	}
	g.wg.Wait()
}
