//go:build race

package ccpfs

// raceEnabled reports that the race detector is instrumenting this
// build. Shape tests assert performance ratios of the simulated
// testbed; under the detector's order-of-magnitude slowdown those
// ratios are meaningless, so they skip themselves.
const raceEnabled = true
