package seqdlm_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"ccpfs/seqdlm"
)

// kvStore is a miniature coherent cache layer built directly on the
// public seqdlm API: one lock resource guards one shared byte region,
// writers cache locally and write back at cancel, and the storage side
// uses the SN tree to keep the newest version — the embedding pattern
// the package documentation describes.
type kvStore struct {
	mu   sync.Mutex
	tree seqdlm.Tree
	data map[int64]byte // byte-granular backing store
}

func (s *kvStore) applyWriteBack(rng seqdlm.Extent, sn seqdlm.SN, val byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, won := range s.tree.Insert(rng, sn) {
		for off := won.Start; off < won.End; off++ {
			s.data[off] = val
		}
	}
}

type cachedWrite struct {
	rng seqdlm.Extent
	sn  seqdlm.SN
	val byte
}

type node struct {
	lc    *seqdlm.LockClient
	mu    sync.Mutex
	dirty []cachedWrite
	store *kvStore
}

func (n *node) write(rng seqdlm.Extent, val byte) error {
	h, err := n.lc.Acquire(context.Background(), 1, seqdlm.NBW, rng)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.dirty = append(n.dirty, cachedWrite{rng: rng, sn: h.SN(), val: val})
	n.mu.Unlock()
	n.lc.Unlock(h)
	return nil
}

// flushForCancel is the Flusher hook: write back everything at or below
// the canceling lock's SN.
func (n *node) flushForCancel(_ context.Context, res seqdlm.ResourceID, rng seqdlm.Extent, sn seqdlm.SN) error {
	n.mu.Lock()
	var keep, flush []cachedWrite
	for _, w := range n.dirty {
		if w.sn <= sn && w.rng.Overlaps(rng) {
			flush = append(flush, w)
		} else {
			keep = append(keep, w)
		}
	}
	n.dirty = keep
	n.mu.Unlock()
	for _, w := range flush {
		n.store.applyWriteBack(w.rng, w.sn, w.val)
	}
	return nil
}

func TestEmbedSeqDLMAsCoherentCacheLayer(t *testing.T) {
	store := &kvStore{data: make(map[int64]byte)}
	srv := seqdlm.NewServer(seqdlm.SeqDLM(), nil)

	nodes := make(map[seqdlm.ClientID]*node)
	srv.SetNotifier(seqdlm.NotifierFunc(func(_ context.Context, rv seqdlm.Revocation) {
		if n, ok := nodes[rv.Client]; ok {
			n.lc.OnRevoke(rv.Resource, rv.Lock)
		}
		srv.RevokeAck(rv.Resource, rv.Lock)
	}))

	router := func(seqdlm.ResourceID) seqdlm.ServerConn { return directConn{srv} }
	for id := seqdlm.ClientID(1); id <= 4; id++ {
		n := &node{store: store}
		n.lc = seqdlm.NewLockClient(id, seqdlm.SeqDLM(), router, seqdlm.FlusherFunc(n.flushForCancel))
		nodes[id] = n
	}

	// Four nodes race overlapping writes; the SN machinery must make the
	// store converge to the last grant's value on every byte.
	var wg sync.WaitGroup
	for id, n := range nodes {
		wg.Add(1)
		go func(id seqdlm.ClientID, n *node) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if err := n.write(seqdlm.NewExtent(0, 100), byte(id)*10+byte(k)); err != nil {
					t.Errorf("node %d: %v", id, err)
					return
				}
			}
		}(id, n)
	}
	wg.Wait()
	for _, n := range nodes {
		n.lc.ReleaseAll(context.Background())
	}
	if err := srv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// After all locks are released, every write was flushed and the store
	// holds the value of the write with the LARGEST SN on every byte.
	store.mu.Lock()
	defer store.mu.Unlock()
	maxSN, ok := store.tree.MaxSNOverlapping(seqdlm.NewExtent(0, 100))
	if !ok {
		t.Fatal("nothing reached the store")
	}
	want := store.data[0]
	for off := int64(0); off < 100; off++ {
		if store.data[off] != want {
			t.Fatalf("store not convergent at byte %d: %d vs %d", off, store.data[off], want)
		}
	}
	if maxSN == 0 {
		t.Fatal("no write-mode SNs recorded")
	}
}

type directConn struct{ srv *seqdlm.Server }

func (d directConn) Lock(ctx context.Context, req seqdlm.Request) (seqdlm.Grant, error) {
	return d.srv.Lock(ctx, req)
}
func (d directConn) Release(_ context.Context, res seqdlm.ResourceID, id seqdlm.LockID) error {
	d.srv.Release(res, id)
	return nil
}
func (d directConn) Downgrade(_ context.Context, res seqdlm.ResourceID, id seqdlm.LockID, m seqdlm.Mode) error {
	return d.srv.Downgrade(res, id, m)
}

func TestPublicSurface(t *testing.T) {
	if seqdlm.SelectMode(true, false, false) != seqdlm.PR {
		t.Fatal("SelectMode re-export broken")
	}
	if seqdlm.Span(10, 5) != seqdlm.NewExtent(10, 15) {
		t.Fatal("extent helpers broken")
	}
	for _, p := range []seqdlm.Policy{seqdlm.SeqDLM(), seqdlm.Basic(), seqdlm.Lustre(), seqdlm.Datatype()} {
		if p.Name == "" {
			t.Fatal("policy re-export broken")
		}
	}
	if seqdlm.Inf <= 0 {
		t.Fatal("Inf sentinel broken")
	}
	_ = time.Now() // keep time imported for future timing assertions
}
