// Package seqdlm is the public API of the SeqDLM lock manager itself,
// independent of ccPFS — the paper's future-work direction of using
// SeqDLM as a general distributed coherent-cache layer. It re-exports
// the engine, the client state machine, and the policies so another
// system can embed them with its own transport and data path:
//
//   - run a Server wherever you shard your resources;
//   - implement Notifier to deliver revocation callbacks to holders
//     (call Server.RevokeAck when the holder acknowledges);
//   - implement Flusher with your write-back path: it is invoked by the
//     client's cancel path with (resource, range, max SN) and must make
//     that data durable before returning;
//   - tag your cached data with Handle.SN and keep the newest SN per
//     byte range on the storage side (extent.Tree does exactly this) so
//     out-of-order write-back stays correct under early grant.
//
// See examples/customdlm for a complete system built this way.
package seqdlm

import (
	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
)

// Core types, re-exported.
type (
	// Server is the lock-server engine (one per resource shard).
	Server = dlm.Server
	// LockClient is the client half: grant cache, revocation handling,
	// and the downgrade→flush→release cancel path.
	LockClient = dlm.LockClient
	// Handle is a client's reference to a granted lock.
	Handle = dlm.Handle
	// Policy selects SeqDLM or one of the paper's baselines.
	Policy = dlm.Policy
	// Mode is a lock mode.
	Mode = dlm.Mode
	// State is GRANTED or CANCELING.
	State = dlm.State
	// Request, Grant, Revocation are the server's protocol types.
	Request = dlm.Request
	// Grant is the server's reply to a Request.
	Grant = dlm.Grant
	// Revocation identifies a callback to a lock holder.
	Revocation = dlm.Revocation
	// Notifier delivers revocations; NotifierFunc adapts a function.
	Notifier = dlm.Notifier
	// NotifierFunc adapts a function to Notifier.
	NotifierFunc = dlm.NotifierFunc
	// ServerConn is how a LockClient reaches a Server.
	ServerConn = dlm.ServerConn
	// Flusher is the client's write-back hook.
	Flusher = dlm.Flusher
	// FlusherFunc adapts a function to Flusher.
	FlusherFunc = dlm.FlusherFunc
	// ResourceID, ClientID, LockID identify resources, clients, locks.
	ResourceID = dlm.ResourceID
	// ClientID identifies a lock client.
	ClientID = dlm.ClientID
	// LockID identifies a granted lock within one server.
	LockID = dlm.LockID
	// LockRecord is the recovery export format (§IV-C2).
	LockRecord = dlm.LockRecord
	// Stats and Snapshot expose protocol counters.
	Stats = dlm.Stats
	// Snapshot is a plain-value copy of Stats.
	Snapshot = dlm.Snapshot

	// Extent is a half-open byte range; SN a sequence number; SNExtent
	// an SN-tagged range; Tree the newest-SN interval structure for the
	// storage side.
	Extent = extent.Extent
	// SN is a lock-resource sequence number.
	SN = extent.SN
	// SNExtent is an SN-tagged extent.
	SNExtent = extent.SNExtent
	// Tree is the storage-side newest-SN interval structure.
	Tree = extent.Tree
)

// Lock modes (Table II of the paper) and states.
const (
	PR  = dlm.PR
	NBW = dlm.NBW
	BW  = dlm.BW
	PW  = dlm.PW

	Granted   = dlm.Granted
	Canceling = dlm.Canceling
)

// Inf is the EOF sentinel for lock range ends.
const Inf = extent.Inf

// NewServer returns a lock-server engine with the given policy.
func NewServer(policy Policy, notifier Notifier) *Server {
	return dlm.NewServer(policy, notifier)
}

// NewLockClient returns the client state machine. router maps a
// resource to the connection of the server owning it; flusher is the
// write-back path used at cancel time.
func NewLockClient(id ClientID, policy Policy, router func(ResourceID) ServerConn, flusher Flusher) *LockClient {
	return dlm.NewLockClient(id, policy, router, flusher)
}

// SeqDLM returns the paper's proposed policy (early grant, early
// revocation, automatic conversion).
func SeqDLM() Policy { return dlm.SeqDLM() }

// Basic returns the traditional DLM baseline.
func Basic() Policy { return dlm.Basic() }

// Lustre returns the Lustre-special baseline.
func Lustre() Policy { return dlm.Lustre() }

// Datatype returns the datatype-locking baseline.
func Datatype() Policy { return dlm.Datatype() }

// SelectMode applies the deterministic mode-selection rules of Fig. 10.
func SelectMode(isRead, implicitRead, multiResource bool) Mode {
	return dlm.SelectMode(isRead, implicitRead, multiResource)
}

// NewExtent returns the extent [start, end).
func NewExtent(start, end int64) Extent { return extent.New(start, end) }

// Span returns the extent starting at off with length n.
func Span(off, n int64) Extent { return extent.Span(off, n) }
