// Command seqbench runs the SeqDLM/ccPFS experiment suite and prints
// every table and figure series of the paper's evaluation.
//
// Usage:
//
//	seqbench                 # run every experiment at the default scale
//	seqbench -exp fig20      # run one experiment
//	seqbench -list           # list experiment IDs
//	seqbench -scale 2        # halve simulated device speeds (slower,
//	                         # sharper contention shapes)
//
// Experiment IDs: fig4, fig5, model, fig17, fig18, fig19a, fig19b,
// table3, fig20, fig21, fig23, fig24, ablation (fig22 and fig25 are the
// time columns of fig21 and fig24), pingpong — the producer-consumer
// exchange pattern with and without client-to-client lock handoff —
// readfan — the write-then-fan-out rotation with and without batched
// shared-mode grants and peer-to-peer read-lease propagation — and
// partition — the lock-space partitioning scaling curve (not in the
// paper; -lock-servers picks the server counts).
//
// -benchjson FILE runs the parallel hot-path benchmarks of
// internal/perfbench instead of the experiment suite and writes the
// results to FILE (BENCH_dlm.json by convention); -benchbaseline FILE
// folds per-benchmark baseline numbers and speedups into the report.
// -mutexprofile FILE and -blockprofile FILE capture pprof contention
// profiles covering the whole benchmark run (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ccpfs"
	"ccpfs/internal/perfbench"
)

type experiment struct {
	id   string
	desc string
	run  func(ccpfs.Hardware) (*ccpfs.Experiment, error)
}

func suite() []experiment {
	return []experiment{
		{"fig4", "IO pattern gap under a traditional DLM (motivation)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig4()
			cfg.Hardware = hw
			return ccpfs.RunFig4(cfg)
		}},
		{"fig5", "bandwidth vs data flushing cost (motivation)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig5()
			cfg.Hardware = hw
			return ccpfs.RunFig5(cfg)
		}},
		{"model", "analytic bottleneck model, Table I / Eq. (1)-(2)", func(ccpfs.Hardware) (*ccpfs.Experiment, error) {
			return ccpfs.RunModel(), nil
		}},
		{"fig17", "sequential conflicting writes: time breakdown", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig17()
			cfg.Hardware = hw
			return ccpfs.RunFig17(cfg)
		}},
		{"fig18", "parallel throughput ± early revocation + lock ratio", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig18()
			cfg.Hardware = hw
			return ccpfs.RunFig18(cfg)
		}},
		{"fig19a", "lock upgrading: interleaved reads/writes", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig19a()
			cfg.Hardware = hw
			return ccpfs.RunFig19a(cfg)
		}},
		{"fig19b", "lock downgrading: two-stripe spanning writes", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig19b()
			cfg.Hardware = hw
			return ccpfs.RunFig19b(cfg)
		}},
		{"table3", "IOR N-1 segmented, low contention", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig20()
			cfg.Hardware = hw
			return ccpfs.RunTable3(cfg)
		}},
		{"fig20", "IOR N-1 strided on one stripe (+ fig20b PIO split)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig20()
			cfg.Hardware = hw
			return ccpfs.RunFig20(cfg)
		}},
		{"fig21", "N-1 strided on 4/8 stripes (+ fig22 times)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig21()
			cfg.Hardware = hw
			return ccpfs.RunFig21(cfg)
		}},
		{"fig23", "Tile-IO: SeqDLM vs DLM-datatype", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig23()
			cfg.Hardware = hw
			return ccpfs.RunFig23(cfg)
		}},
		{"fig24", "VPIC-IO: ccPFS-SeqDLM vs ccPFS-Lustre (+ fig25 times)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig24()
			cfg.Hardware = hw
			return ccpfs.RunFig24(cfg)
		}},
		{"ablation", "SeqDLM mechanisms disabled one at a time", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultAblation()
			cfg.Hardware = hw
			return ccpfs.RunAblation(cfg)
		}},
		{"pingpong", "producer-consumer exchanges: server revoke path vs handoff", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultPingPong()
			cfg.Hardware = hw
			cfg.Virtual = virtualOpts()
			return ccpfs.RunPingPong(cfg)
		}},
		{"readfan", "write-then-fan-out rotation: server grants vs batched fan-out + lease propagation", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultReaderFan()
			cfg.Hardware = hw
			cfg.Virtual = virtualOpts()
			if widths := readerCounts(); widths != nil {
				cfg.Readers = widths
			}
			return ccpfs.RunReaderFan(cfg)
		}},
		{"partition", "lock-space partitioning: grant throughput vs lock servers", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultPartitionScale()
			cfg.Hardware = hw
			cfg.Virtual = virtualOpts()
			if counts := lockServerCounts(); counts != nil {
				cfg.Servers = counts
			}
			return ccpfs.RunPartitionScale(cfg)
		}},
	}
}

// lockServerCounts parses the -lock-servers flag into the partition
// experiment's server-count list; nil keeps the default curve.
func lockServerCounts() []int {
	if *lockServersFlag == "" {
		return nil
	}
	var counts []int
	for _, part := range strings.Split(*lockServersFlag, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -lock-servers element %q\n", part)
			os.Exit(1)
		}
		counts = append(counts, n)
	}
	return counts
}

var lockServersFlag = flag.String("lock-servers", "",
	"comma-separated lock-server counts for the partition experiment (e.g. 1,2,4,8; default 1,2,4)")

var readersFlag = flag.String("readers", "",
	"comma-separated fan-out widths for the readfan experiment (e.g. 64,256,1024; default 2,4,8)")

var virtualFlag = flag.Bool("virtual", false,
	"run supporting experiments (pingpong, readfan, partition) in deterministic discrete-event mode: simulated delays advance virtual time instead of sleeping, so large client counts finish in seconds and the same -seed reproduces the numbers exactly")

var seedFlag = flag.Int64("seed", 1, "virtual-mode random seed (with -virtual)")

// virtualOpts folds the -virtual/-seed flags into experiment configs.
func virtualOpts() ccpfs.VirtualOpts {
	return ccpfs.VirtualOpts{Enabled: *virtualFlag, Seed: *seedFlag}
}

// readerCounts parses -readers into the readfan experiment's width
// list; nil keeps the default curve.
func readerCounts() []int {
	if *readersFlag == "" {
		return nil
	}
	var widths []int
	for _, part := range strings.Split(*readersFlag, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -readers element %q\n", part)
			os.Exit(1)
		}
		widths = append(widths, n)
	}
	return widths
}

func main() {
	expFlag := flag.String("exp", "", "run a single experiment (see -list)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	scale := flag.Float64("scale", 1, "slow simulated devices by this factor")
	csv := flag.Bool("csv", false, "emit CSV rows instead of tables")
	benchJSON := flag.String("benchjson", "", "run the parallel hot-path benchmarks and write results to this file")
	benchBaseline := flag.String("benchbaseline", "", "baseline results file to compute speedups against (with -benchjson)")
	benchProcs := flag.Int("benchprocs", 0, "GOMAXPROCS for -benchjson (0 = 8 or NumCPU, whichever is larger)")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile of the -benchjson run to this file")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile of the -benchjson run to this file")
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchBaseline, *benchProcs, *mutexProfile, *blockProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	exps := suite()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}

	hw := ccpfs.BenchHardware()
	if *scale > 0 && *scale != 1 {
		hw.RTT = time.Duration(float64(hw.RTT) * *scale)
		hw.NetBandwidth /= *scale
		hw.DiskBandwidth /= *scale
		hw.ServerOPS /= *scale
	}

	ran := 0
	for _, e := range exps {
		if *expFlag != "" && !strings.EqualFold(*expFlag, e.id) {
			continue
		}
		ran++
		start := time.Now()
		exp, err := e.run(hw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(exp.CSV())
		} else {
			fmt.Printf("=== %s (%s, %.1fs)\n%s\n", exp.ID, exp.Title, time.Since(start).Seconds(), exp.Text)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *expFlag)
		os.Exit(1)
	}
}

// benchReport is the schema of the -benchjson output file.
type benchReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Warn       string       `json:"warn,omitempty"`
	Results    []benchEntry `json:"results"`
}

type benchEntry struct {
	perfbench.Result
	// BaselineNsPerOp and Speedup are present when -benchbaseline named
	// a file containing a result with the same benchmark name.
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
}

// runBenchJSON runs the perfbench suite at the requested parallelism and
// writes the report, printing a human-readable summary to stdout. When
// mutexPath or blockPath is non-empty the corresponding runtime profiler
// covers the whole suite and the pprof profile is written alongside the
// report, so a contention regression spotted by the numbers can be
// pinned to a stack without re-running anything.
func runBenchJSON(outPath, baselinePath string, procs int, mutexPath, blockPath string) error {
	if procs <= 0 {
		procs = 8
		if n := runtime.NumCPU(); n > procs {
			procs = n
		}
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(1)
		defer runtime.SetMutexProfileFraction(0)
	}
	if blockPath != "" {
		runtime.SetBlockProfileRate(1)
		defer runtime.SetBlockProfileRate(0)
	}
	baseline := map[string]perfbench.Result{}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("benchbaseline: %w", err)
		}
		var rs []perfbench.Result
		if err := json.Unmarshal(data, &rs); err != nil {
			// Accept a previous -benchjson report as the baseline too.
			var rep benchReport
			if err2 := json.Unmarshal(data, &rep); err2 != nil {
				return fmt.Errorf("benchbaseline: %v", err)
			}
			for _, e := range rep.Results {
				rs = append(rs, e.Result)
			}
		}
		for _, r := range rs {
			baseline[r.Name] = r
		}
	}

	fmt.Printf("running %d parallel benchmarks at GOMAXPROCS=%d...\n", len(perfbench.All()), procs)
	results, env := perfbench.Run(procs)
	if env.Warn != "" {
		fmt.Fprintf(os.Stderr, "WARN: %s\n", env.Warn)
	}
	rep := benchReport{GOMAXPROCS: env.GOMAXPROCS, NumCPU: env.NumCPU, Warn: env.Warn}
	for _, r := range results {
		e := benchEntry{Result: r}
		if b, ok := baseline[r.Name]; ok && r.NsPerOp > 0 {
			e.BaselineNsPerOp = b.NsPerOp
			e.Speedup = b.NsPerOp / r.NsPerOp
			fmt.Printf("  %-34s %10.1f ns/op  (baseline %10.1f, %.2fx)\n", r.Name, r.NsPerOp, b.NsPerOp, e.Speedup)
		} else {
			fmt.Printf("  %-34s %10.1f ns/op\n", r.Name, r.NsPerOp)
		}
		rep.Results = append(rep.Results, e)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	if err := writeProfile("mutex", mutexPath); err != nil {
		return err
	}
	return writeProfile("block", blockPath)
}

// writeProfile dumps the named runtime profile in pprof format to path
// (no-op when path is empty).
func writeProfile(name, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		return fmt.Errorf("writing %s profile: %w", name, err)
	}
	fmt.Printf("wrote %s profile to %s\n", name, path)
	return nil
}
