// Command seqbench runs the SeqDLM/ccPFS experiment suite and prints
// every table and figure series of the paper's evaluation.
//
// Usage:
//
//	seqbench                 # run every experiment at the default scale
//	seqbench -exp fig20      # run one experiment
//	seqbench -list           # list experiment IDs
//	seqbench -scale 2        # halve simulated device speeds (slower,
//	                         # sharper contention shapes)
//
// Experiment IDs: fig4, fig5, model, fig17, fig18, fig19a, fig19b,
// table3, fig20, fig21, fig23, fig24, ablation (fig22 and fig25 are the
// time columns of fig21 and fig24).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ccpfs"
)

type experiment struct {
	id   string
	desc string
	run  func(ccpfs.Hardware) (*ccpfs.Experiment, error)
}

func suite() []experiment {
	return []experiment{
		{"fig4", "IO pattern gap under a traditional DLM (motivation)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig4()
			cfg.Hardware = hw
			return ccpfs.RunFig4(cfg)
		}},
		{"fig5", "bandwidth vs data flushing cost (motivation)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig5()
			cfg.Hardware = hw
			return ccpfs.RunFig5(cfg)
		}},
		{"model", "analytic bottleneck model, Table I / Eq. (1)-(2)", func(ccpfs.Hardware) (*ccpfs.Experiment, error) {
			return ccpfs.RunModel(), nil
		}},
		{"fig17", "sequential conflicting writes: time breakdown", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig17()
			cfg.Hardware = hw
			return ccpfs.RunFig17(cfg)
		}},
		{"fig18", "parallel throughput ± early revocation + lock ratio", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig18()
			cfg.Hardware = hw
			return ccpfs.RunFig18(cfg)
		}},
		{"fig19a", "lock upgrading: interleaved reads/writes", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig19a()
			cfg.Hardware = hw
			return ccpfs.RunFig19a(cfg)
		}},
		{"fig19b", "lock downgrading: two-stripe spanning writes", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig19b()
			cfg.Hardware = hw
			return ccpfs.RunFig19b(cfg)
		}},
		{"table3", "IOR N-1 segmented, low contention", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig20()
			cfg.Hardware = hw
			return ccpfs.RunTable3(cfg)
		}},
		{"fig20", "IOR N-1 strided on one stripe (+ fig20b PIO split)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig20()
			cfg.Hardware = hw
			return ccpfs.RunFig20(cfg)
		}},
		{"fig21", "N-1 strided on 4/8 stripes (+ fig22 times)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig21()
			cfg.Hardware = hw
			return ccpfs.RunFig21(cfg)
		}},
		{"fig23", "Tile-IO: SeqDLM vs DLM-datatype", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig23()
			cfg.Hardware = hw
			return ccpfs.RunFig23(cfg)
		}},
		{"fig24", "VPIC-IO: ccPFS-SeqDLM vs ccPFS-Lustre (+ fig25 times)", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultFig24()
			cfg.Hardware = hw
			return ccpfs.RunFig24(cfg)
		}},
		{"ablation", "SeqDLM mechanisms disabled one at a time", func(hw ccpfs.Hardware) (*ccpfs.Experiment, error) {
			cfg := ccpfs.DefaultAblation()
			cfg.Hardware = hw
			return ccpfs.RunAblation(cfg)
		}},
	}
}

func main() {
	expFlag := flag.String("exp", "", "run a single experiment (see -list)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	scale := flag.Float64("scale", 1, "slow simulated devices by this factor")
	csv := flag.Bool("csv", false, "emit CSV rows instead of tables")
	flag.Parse()

	exps := suite()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}

	hw := ccpfs.BenchHardware()
	if *scale > 0 && *scale != 1 {
		hw.RTT = time.Duration(float64(hw.RTT) * *scale)
		hw.NetBandwidth /= *scale
		hw.DiskBandwidth /= *scale
		hw.ServerOPS /= *scale
	}

	ran := 0
	for _, e := range exps {
		if *expFlag != "" && !strings.EqualFold(*expFlag, e.id) {
			continue
		}
		ran++
		start := time.Now()
		exp, err := e.run(hw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(exp.CSV())
		} else {
			fmt.Printf("=== %s (%s, %.1fs)\n%s\n", exp.ID, exp.Title, time.Since(start).Seconds(), exp.Text)
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *expFlag)
		os.Exit(1)
	}
}
