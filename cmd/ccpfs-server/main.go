// Command ccpfs-server runs a standalone ccPFS data server (IO service +
// DLM service, optionally the namespace service) over real TCP — the
// same code paths the simulated cluster runs, on a real fabric.
//
// A two-server deployment hosting the namespace on the first:
//
//	ccpfs-server -listen :9040 -meta -data /var/ccpfs0 &
//	ccpfs-server -listen :9041 -data /var/ccpfs1 &
//	ccpfs-cli -servers localhost:9040,localhost:9041 put /etc/hosts /hosts
//
// With -lock-servers N -lock-index I the node masters only its static
// share of the lock space's hash slots (slot s belongs to server s % N;
// DESIGN.md §12) and redirects lock RPCs for the rest with ErrNotOwner,
// so N processes can split lock traffic N ways:
//
//	ccpfs-server -listen :9040 -meta -lock-servers 2 -lock-index 0 &
//	ccpfs-server -listen :9041 -lock-servers 2 -lock-index 1 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"ccpfs/internal/dataserver"
	"ccpfs/internal/dlm"
	"ccpfs/internal/meta"
	"ccpfs/internal/storage"
	"ccpfs/internal/transport/tcpnet"
)

func policyByName(name string) (dlm.Policy, error) {
	switch name {
	case "seqdlm":
		return dlm.SeqDLM(), nil
	case "basic":
		return dlm.Basic(), nil
	case "lustre":
		return dlm.Lustre(), nil
	case "datatype":
		return dlm.Datatype(), nil
	}
	return dlm.Policy{}, fmt.Errorf("unknown policy %q (seqdlm|basic|lustre|datatype)", name)
}

func main() {
	listen := flag.String("listen", ":9040", "TCP listen address")
	dataDir := flag.String("data", "", "stripe store directory (in-memory when empty)")
	policy := flag.String("policy", "seqdlm", "DLM policy: seqdlm|basic|lustre|datatype")
	hostMeta := flag.Bool("meta", false, "also host the namespace service (exactly one server per deployment)")
	extentLog := flag.Bool("extent-log", false, "keep per-stripe extent logs for recovery")
	cleanup := flag.Duration("cleanup", 100*time.Millisecond, "extent cache cleanup interval (0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget before a hard close (0 closes immediately)")
	debug := flag.String("debug", "", "serve /debug/metrics, /debug/trace and pprof on this address (e.g. localhost:6060; off when empty)")
	traceEvents := flag.Int("trace-events", 4096, "DLM protocol events kept for /debug/trace (with -debug)")
	lockServers := flag.Int("lock-servers", 0, "partition the lock space across this many lock servers (0 = unpartitioned)")
	lockIndex := flag.Int("lock-index", 0, "this node's index in the static lock partition (with -lock-servers)")
	flag.Parse()

	pol, err := policyByName(*policy)
	if err != nil {
		log.Fatal(err)
	}
	if *lockServers < 0 || (*lockServers > 0 && (*lockIndex < 0 || *lockIndex >= *lockServers)) {
		log.Fatalf("-lock-index %d out of range for -lock-servers %d", *lockIndex, *lockServers)
	}

	cfg := dataserver.Config{
		Name:            *listen,
		Policy:          pol,
		ExtentLog:       *extentLog,
		CleanupInterval: *cleanup,
	}
	if *debug != "" {
		cfg.TraceEvents = *traceEvents
	}
	if *lockServers > 0 {
		// Static mastership: no coordinator, no leases — each node
		// permanently masters slot s where s % lockServers == lockIndex,
		// and serves the corresponding epoch-1 partition map to clients.
		cfg.Partition = &dataserver.PartitionConfig{
			Index:   int32(*lockIndex),
			Servers: *lockServers,
		}
	}
	if *dataDir != "" {
		fs, err := storage.NewFileStore(*dataDir)
		if err != nil {
			log.Fatalf("opening store: %v", err)
		}
		defer fs.Close()
		cfg.Store = fs
		if *extentLog {
			// Persist the extent log next to the data so recovery works
			// across real restarts.
			cfg.ExtentLogDir = *dataDir
		}
	}
	if *hostMeta {
		cfg.Meta = meta.NewService()
	}

	l, err := tcpnet.New().Listen(*listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := dataserver.New(cfg)
	srv.Serve(l)
	log.Printf("ccpfs-server: policy=%s meta=%v data=%q listening on %s",
		pol.Name, *hostMeta, *dataDir, l.Addr())
	if *lockServers > 0 {
		log.Printf("ccpfs-server: lock partition %d/%d (static, %d slots)",
			*lockIndex, *lockServers, len(srv.DLM.OwnedSlots()))
	}

	var debugSrv *http.Server
	if *debug != "" {
		dl, err := net.Listen("tcp", *debug)
		if err != nil {
			log.Fatalf("debug listen: %v", err)
		}
		debugSrv = &http.Server{Handler: srv.DebugHandler()}
		go debugSrv.Serve(dl)
		log.Printf("ccpfs-server: debug endpoint on http://%s/debug/metrics", dl.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // restore default signal handling: a second signal kills us
	if debugSrv != nil {
		debugSrv.Close()
	}
	if *drain <= 0 {
		log.Printf("ccpfs-server: shutting down (immediate)")
		srv.Close()
		return
	}
	log.Printf("ccpfs-server: draining (budget %v; signal again to force)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("ccpfs-server: drain incomplete: %v; forcing close", err)
		srv.Close()
		return
	}
	log.Printf("ccpfs-server: drained cleanly")
}
