// Command ccpfs-cli is a small client for standalone ccpfs-server
// deployments: put/get/stat/rm files and run a quick write benchmark
// over real TCP.
//
// Usage:
//
//	ccpfs-cli -servers host0:9040,host1:9041 put local.dat /remote.dat
//	ccpfs-cli -servers host0:9040 get /remote.dat copy.dat
//	ccpfs-cli -servers host0:9040 stat /remote.dat
//	ccpfs-cli -servers host0:9040 rm /remote.dat
//	ccpfs-cli -servers host0:9040 bench 64KB 100
//
// The server list must be identical (same order) across every client of
// a deployment: stripe placement hashes over the list index. The first
// server must host the namespace (-meta).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"ccpfs/internal/client"
	"ccpfs/internal/dlm"
	"ccpfs/internal/rpc"
	"ccpfs/internal/transport/tcpnet"
)

func policyByName(name string) (dlm.Policy, error) {
	switch name {
	case "seqdlm":
		return dlm.SeqDLM(), nil
	case "basic":
		return dlm.Basic(), nil
	case "lustre":
		return dlm.Lustre(), nil
	case "datatype":
		return dlm.Datatype(), nil
	}
	return dlm.Policy{}, fmt.Errorf("unknown policy %q", name)
}

func parseSize(s string) (int64, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.ParseInt(s, 10, 64)
	return n * mult, err
}

func main() {
	servers := flag.String("servers", "localhost:9040", "comma-separated data servers; first hosts the namespace")
	policy := flag.String("policy", "seqdlm", "DLM policy (must match the servers)")
	id := flag.Uint("id", 0, "client ID (unique per deployment; derived from PID when 0)")
	stripeSize := flag.String("stripe-size", "1MB", "stripe size for created files")
	stripes := flag.Uint("stripes", 0, "stripe count for created files (server count when 0)")
	flag.Parse()

	pol, err := policyByName(*policy)
	if err != nil {
		log.Fatal(err)
	}
	addrs := strings.Split(*servers, ",")
	cid := dlm.ClientID(*id)
	if cid == 0 {
		cid = dlm.ClientID(os.Getpid()&0xFFFF | 0x10000)
	}
	ssize, err := parseSize(*stripeSize)
	if err != nil {
		log.Fatalf("bad stripe size: %v", err)
	}
	scount := uint32(*stripes)
	if scount == 0 {
		scount = uint32(len(addrs))
	}

	net := tcpnet.New()
	conns := client.Conns{}
	for i, addr := range addrs {
		conn, err := net.Dial(strings.TrimSpace(addr))
		if err != nil {
			log.Fatalf("dialing %s: %v", addr, err)
		}
		ep := rpc.NewEndpoint(conn, rpc.Options{})
		conns.Data = append(conns.Data, ep)
		if i == 0 {
			conns.Meta = ep
		}
	}
	cl, err := client.New(context.Background(), client.Config{
		Name:   fmt.Sprintf("cli-%d", cid),
		ID:     cid,
		Policy: pol,
	}, conns)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: ccpfs-cli [flags] put|get|stat|ls|rm|bench ...")
	}
	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put <local> <remote>")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			log.Fatal(err)
		}
		f, err := cl.OpenOrCreate(args[2], ssize, scount)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.WriteAt(data, 0); err != nil {
			log.Fatal(err)
		}
		if err := f.Fsync(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", len(data), args[2])
	case "get":
		if len(args) != 3 {
			log.Fatal("usage: get <remote> <local>")
		}
		f, err := cl.Open(args[1])
		if err != nil {
			log.Fatal(err)
		}
		size, err := f.Size()
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, size)
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			log.Fatal(err)
		}
		if err := os.WriteFile(args[2], buf, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %d bytes from %s\n", size, args[1])
	case "stat":
		if len(args) != 2 {
			log.Fatal("usage: stat <remote>")
		}
		f, err := cl.Open(args[1])
		if err != nil {
			log.Fatal(err)
		}
		size, err := f.Size()
		if err != nil {
			log.Fatal(err)
		}
		ss, sc := f.Layout()
		fmt.Printf("%s: fid=%d size=%d stripeSize=%d stripes=%d\n", args[1], f.FID(), size, ss, sc)
	case "ls":
		paths, err := cl.List()
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
	case "rm":
		if len(args) != 2 {
			log.Fatal("usage: rm <remote>")
		}
		if err := cl.Remove(args[1]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("removed %s\n", args[1])
	case "bench":
		if len(args) != 3 {
			log.Fatal("usage: bench <write-size> <count>")
		}
		ws, err := parseSize(args[1])
		if err != nil {
			log.Fatal(err)
		}
		count, err := strconv.Atoi(args[2])
		if err != nil {
			log.Fatal(err)
		}
		f, err := cl.OpenOrCreate("/bench.dat", ssize, scount)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, ws)
		start := time.Now()
		for i := 0; i < count; i++ {
			if _, err := f.WriteAt(buf, int64(i)*ws); err != nil {
				log.Fatal(err)
			}
		}
		pio := time.Since(start)
		if err := f.Fsync(); err != nil {
			log.Fatal(err)
		}
		total := time.Since(start)
		bytes := int64(count) * ws
		fmt.Printf("PIO: %d x %s in %v (%.1f MB/s); with flush: %v (%.1f MB/s)\n",
			count, args[1], pio, float64(bytes)/pio.Seconds()/1e6,
			total, float64(bytes)/total.Seconds()/1e6)
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}
