// Command benchcheck is the CI regression gate for the DLM grant
// engine. It re-runs the grant-path and revocation-storm benchmarks
// in-process and fails (exit 1) when
//
//   - the interval index no longer beats the linear-scan baseline by
//     the required floor (-minspeedup), or
//   - a benchmark pair ratio regressed by more than -threshold against
//     the checked-in BENCH_dlm.json baseline.
//
// Only pair ratios (Linear/Indexed, Unbatched/Batched) are compared
// against the baseline file: ratios measured on the same machine in
// the same run are hardware-independent, so the gate is meaningful on
// CI runners that are slower or faster than the machine that produced
// the baseline. Absolute ns/op numbers are printed but never gated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ccpfs/internal/perfbench"
)

// report mirrors seqbench's -benchjson schema so BENCH_dlm.json can be
// consumed directly.
type report struct {
	Results []struct {
		perfbench.Result
	} `json:"results"`
}

func loadBaseline(path string) (map[string]perfbench.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]perfbench.Result{}
	var rs []perfbench.Result
	if err := json.Unmarshal(data, &rs); err != nil {
		var rep report
		if err2 := json.Unmarshal(data, &rep); err2 != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		for _, e := range rep.Results {
			rs = append(rs, e.Result)
		}
	}
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}

// ratio returns slow/fast ns-per-op from the result set, or 0 when
// either side is missing or unmeasured.
func ratio(rs map[string]perfbench.Result, slow, fast string) float64 {
	s, f := rs[slow], rs[fast]
	if s.NsPerOp <= 0 || f.NsPerOp <= 0 {
		return 0
	}
	return s.NsPerOp / f.NsPerOp
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_dlm.json", "baseline results file (seqbench -benchjson schema)")
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional regression of a pair ratio vs baseline")
	minSpeedup := flag.Float64("minspeedup", 5.0, "required floor for the LockGrant Linear/Indexed ratio")
	procs := flag.Int("procs", 0, "GOMAXPROCS for the benchmark run (0 = leave as is)")
	flag.Parse()

	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(1)
	}

	names := []string{"LockGrantIndexed", "LockGrantLinear", "RevokeStorm", "RevokeStormUnbatched"}
	fmt.Printf("benchcheck: running %d DLM benchmarks...\n", len(names))
	fresh := map[string]perfbench.Result{}
	failed := false
	for _, r := range perfbench.RunNamed(*procs, names) {
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "FAIL: benchmark %s not registered in perfbench.All()\n", r.Name)
			failed = true
			continue
		}
		fresh[r.Name] = r
		fmt.Printf("  %-24s %12.1f ns/op\n", r.Name, r.NsPerOp)
	}

	pairs := []struct {
		label, slow, fast string
		floor             float64 // required minimum for the fresh ratio; 0 = none
	}{
		{"grant-path index speedup", "LockGrantLinear", "LockGrantIndexed", *minSpeedup},
		{"revoke-storm batching", "RevokeStormUnbatched", "RevokeStorm", 0},
	}
	for _, p := range pairs {
		got := ratio(fresh, p.slow, p.fast)
		if got == 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s: missing fresh results for %s/%s\n", p.label, p.slow, p.fast)
			failed = true
			continue
		}
		fmt.Printf("  %-24s %.2fx (%s / %s)", p.label, got, p.slow, p.fast)
		if p.floor > 0 && got < p.floor {
			fmt.Printf("  << floor %.1fx\n", p.floor)
			fmt.Fprintf(os.Stderr, "FAIL: %s: %.2fx is below the required %.1fx floor\n", p.label, got, p.floor)
			failed = true
			continue
		}
		if base := ratio(baseline, p.slow, p.fast); base > 0 {
			allowed := base * (1 - *threshold)
			fmt.Printf("  baseline %.2fx, allowed >= %.2fx", base, allowed)
			if got < allowed {
				fmt.Println("  << REGRESSION")
				fmt.Fprintf(os.Stderr, "FAIL: %s regressed: %.2fx vs baseline %.2fx (>%.0f%% drop)\n",
					p.label, got, base, *threshold*100)
				failed = true
				continue
			}
		}
		fmt.Println()
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}
