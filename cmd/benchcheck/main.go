// Command benchcheck is the CI regression gate for the DLM grant
// engine and the observability layer. It re-runs the grant-path,
// revocation-storm, and RPC round-trip benchmarks in-process and
// fails (exit 1) when
//
//   - the interval index no longer beats the linear-scan baseline by
//     the required floor (-minspeedup), or
//   - the instrumented RPC round trip exceeds its overhead ceiling
//     over the bare one, or
//   - the parallel RPC round trip is slower per op than the serial one
//     (the lock-free pending-table scaling guarantee), or
//   - the client's cached-lock hit path allocates, or
//   - four capacity-capped partitioned lock servers fail to carry the
//     grant workload at least 2x faster per op than one server, or
//   - the ping-pong handoff benchmark spends more than ~1.2 server RPCs
//     per lock exchange, or its server-path contrast drops below 1.5
//     (meaning the revoke path stopped being exercised), or
//   - the reader fan-out rotation spends more than 0.25 server RPCs per
//     reader-round at eight readers with delegation on, or its
//     server-path contrast drops below 0.9 per reader-round, or
//   - a benchmark pair ratio regressed by more than -threshold against
//     the checked-in BENCH_dlm.json baseline.
//
// Only pair ratios (Linear/Indexed, Unbatched/Batched, Obs/bare) are
// compared: ratios measured on the same machine in the same run are
// hardware-independent, so the gate is meaningful on CI runners that
// are slower or faster than the machine that produced the baseline.
// Absolute ns/op numbers are printed but never gated.
//
// Each benchmark runs three times and the minimum ns/op is kept,
// which filters scheduler noise out of the gated ratios. -update
// re-measures the gated benchmarks the same way and writes them back
// into the baseline file (leaving seqbench-only entries untouched),
// so the recorded ratios are always produced by the same estimator
// the gate reads them with.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ccpfs"
	"ccpfs/internal/perfbench"
)

// report mirrors seqbench's -benchjson schema so BENCH_dlm.json can be
// consumed directly.
type report struct {
	Results []struct {
		perfbench.Result
	} `json:"results"`
}

// rawReport keeps entries benchcheck does not manage intact when
// -update rewrites the baseline file in place.
type rawReport struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Results    []json.RawMessage `json:"results"`
}

// updateBaseline merges the fresh results into the baseline file,
// replacing entries with matching names and appending new ones. The
// gated pair ratios in the baseline are then, by construction,
// measured exactly the way the gate measures them (same rounds, same
// estimator, same GOMAXPROCS) — a single-shot seqbench run that
// catches a benchmark on a noisy interval cannot skew them.
func updateBaseline(path string, fresh map[string]perfbench.Result, names []string) error {
	var rep rawReport
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	seen := map[string]bool{}
	for i, raw := range rep.Results {
		var probe struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			continue
		}
		if r, ok := fresh[probe.Name]; ok {
			enc, err := json.Marshal(r)
			if err != nil {
				return err
			}
			rep.Results[i] = enc
			seen[probe.Name] = true
		}
	}
	for _, name := range names {
		if r, ok := fresh[name]; ok && !seen[name] {
			enc, err := json.Marshal(r)
			if err != nil {
				return err
			}
			rep.Results = append(rep.Results, enc)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func loadBaseline(path string) (map[string]perfbench.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]perfbench.Result{}
	var rs []perfbench.Result
	if err := json.Unmarshal(data, &rs); err != nil {
		var rep report
		if err2 := json.Unmarshal(data, &rep); err2 != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		for _, e := range rep.Results {
			rs = append(rs, e.Result)
		}
	}
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}

// ratio returns slow/fast ns-per-op from the result set, or 0 when
// either side is missing or unmeasured.
func ratio(rs map[string]perfbench.Result, slow, fast string) float64 {
	s, f := rs[slow], rs[fast]
	if s.NsPerOp <= 0 || f.NsPerOp <= 0 {
		return 0
	}
	return s.NsPerOp / f.NsPerOp
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_dlm.json", "baseline results file (seqbench -benchjson schema)")
	threshold := flag.Float64("threshold", 0.25, "max tolerated fractional regression of a pair ratio vs baseline")
	minSpeedup := flag.Float64("minspeedup", 5.0, "required floor for the LockGrant Linear/Indexed ratio")
	procs := flag.Int("procs", 0, "GOMAXPROCS for the benchmark run (0 = leave as is)")
	virtualBudget := flag.Duration("virtualbudget", 10*time.Second, "wall-clock budget for the 64-exchange virtual-mode pingpong gate (0 disables)")
	update := flag.Bool("update", false, "re-measure the gated benchmarks and write them into -baseline instead of gating")
	flag.Parse()

	baseline := map[string]perfbench.Result{}
	if !*update {
		var err error
		baseline, err = loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(1)
		}
	}

	names := []string{
		"LockGrantIndexed", "LockGrantLinear",
		"RevokeStorm", "RevokeStormUnbatched",
		"RpcRoundTrip", "RpcRoundTripObs", "RpcRoundTripParallel",
		"LockClientCachedHitParallel",
		"LockGrantScale1", "LockGrantScale2", "LockGrantScale4", "LockGrantScale8",
		"ServerPingPong", "HandoffPingPong",
		"ReaderFanServer", "ReaderFanDelegated",
	}
	// Each benchmark runs `rounds` times and the minimum ns/op is kept:
	// the min is the run least disturbed by scheduler and VM noise, so
	// the pair ratios gated below are far more stable than single-shot
	// measurements (serial RPC round trips vary ±30% run to run on
	// loaded machines; their minima vary a few percent).
	const rounds = 3
	fmt.Printf("benchcheck: running %d DLM benchmarks x%d (keeping per-name min ns/op)...\n", len(names), rounds)
	fresh := map[string]perfbench.Result{}
	failed := false
	for round := 0; round < rounds; round++ {
		for _, r := range perfbench.RunNamed(*procs, names) {
			if r.N == 0 {
				if round == 0 {
					fmt.Fprintf(os.Stderr, "FAIL: benchmark %s not registered in perfbench.All()\n", r.Name)
					failed = true
				}
				continue
			}
			if best, ok := fresh[r.Name]; !ok || r.NsPerOp < best.NsPerOp {
				fresh[r.Name] = r
			}
		}
	}
	for _, name := range names {
		if r, ok := fresh[name]; ok {
			fmt.Printf("  %-24s %12.1f ns/op\n", r.Name, r.NsPerOp)
		}
	}

	if *update {
		if err := updateBaseline(*baselinePath, fresh, names); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: updating %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		fmt.Printf("benchcheck: wrote %d results to %s\n", len(fresh), *baselinePath)
		return
	}

	pairs := []struct {
		label, slow, fast string
		floor             float64 // required minimum for the fresh ratio; 0 = none
		ceiling           float64 // required maximum for the fresh ratio; 0 = none
	}{
		{label: "grant-path index speedup", slow: "LockGrantLinear", fast: "LockGrantIndexed", floor: *minSpeedup},
		{label: "revoke-storm batching", slow: "RevokeStormUnbatched", fast: "RevokeStorm"},
		// Instrumentation overhead: the fully metered round trip may cost
		// at most 5% over the bare one (ISSUE: allocation-free rule).
		{label: "obs overhead (rpc)", slow: "RpcRoundTripObs", fast: "RpcRoundTrip", ceiling: 1.05},
		// Parallel scaling: with the lock-free pending-call table, eight
		// concurrent callers must be at least as fast per op as one —
		// before it, contention on ep.mu made the parallel round trip
		// *slower* than serial (the ISSUE 6 motivating number).
		{label: "parallel rpc scaling", slow: "RpcRoundTripParallel", fast: "RpcRoundTrip", ceiling: 1.0},
		// Partition scaling: four capacity-capped lock servers must carry
		// the grant workload at least twice as fast per op as one. The
		// ideal ratio is 4x; the 2x floor leaves room for scheduler noise
		// on small CI runners without letting partitioning silently stop
		// scaling.
		{label: "partition lock scaling", slow: "LockGrantScale1", fast: "LockGrantScale4", floor: 2.0},
	}
	for _, p := range pairs {
		got := ratio(fresh, p.slow, p.fast)
		if got == 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s: missing fresh results for %s/%s\n", p.label, p.slow, p.fast)
			failed = true
			continue
		}
		fmt.Printf("  %-24s %.2fx (%s / %s)", p.label, got, p.slow, p.fast)
		if p.floor > 0 && got < p.floor {
			fmt.Printf("  << floor %.1fx\n", p.floor)
			fmt.Fprintf(os.Stderr, "FAIL: %s: %.2fx is below the required %.1fx floor\n", p.label, got, p.floor)
			failed = true
			continue
		}
		if p.ceiling > 0 && got > p.ceiling {
			fmt.Printf("  >> ceiling %.2fx\n", p.ceiling)
			fmt.Fprintf(os.Stderr, "FAIL: %s: %.2fx exceeds the %.2fx ceiling\n", p.label, got, p.ceiling)
			failed = true
			continue
		}
		if p.ceiling > 0 {
			// A ceiling pair is gated absolutely; baseline drift on top of
			// it would only re-test the same bound with extra noise.
			fmt.Println()
			continue
		}
		// A pair whose sides are absent from the baseline file is new
		// since the baseline was recorded — warn and skip rather than
		// failing (or worse, dividing by zero) so adding a benchmark does
		// not require regenerating BENCH_dlm.json on the author's machine
		// in the same commit.
		base := ratio(baseline, p.slow, p.fast)
		if base <= 0 {
			fmt.Println()
			fmt.Fprintf(os.Stderr, "WARN: %s: no baseline for %s/%s in %s; drift not gated (regenerate with seqbench -benchjson)\n",
				p.label, p.slow, p.fast, *baselinePath)
			continue
		}
		allowed := base * (1 - *threshold)
		fmt.Printf("  baseline %.2fx, allowed >= %.2fx", base, allowed)
		if got < allowed {
			fmt.Println("  << REGRESSION")
			fmt.Fprintf(os.Stderr, "FAIL: %s regressed: %.2fx vs baseline %.2fx (>%.0f%% drop)\n",
				p.label, got, base, *threshold*100)
			failed = true
			continue
		}
		fmt.Println()
	}

	// Delegation protocol cost: server RPCs per lock exchange
	// (ping-pong) or per reader-round (reader fan-out), reported by the
	// benchmarks as extra metrics. Like the pair ratios these are
	// protocol counts, not timings, so they are hardware-independent and
	// gated absolutely: the classic revoke path costs 2 RPCs per
	// ping-pong exchange (Lock + Release; >= 1.5 proves the contrast
	// benchmark still exercises it), the handoff path must stay at ~1
	// (the waiter's Lock, with the ack piggybacked; <= 1.2 per the
	// ISSUE 8 target). The reader fan-out rotation pays >= 1 server RPC
	// per reader-round on the server grant path (>= 0.9 keeps the
	// contrast honest); with batched fan-out grants and peer-to-peer
	// lease propagation the cohort shares the writer's single RPC, so
	// the delegated path must stay at or under 0.25 at the benchmark's
	// eight readers (ISSUE 9 target; ideal is 1/8).
	rpcGates := []struct {
		name    string
		metric  string
		floor   float64
		ceiling float64
	}{
		{name: "ServerPingPong", metric: "server_rpcs/exchange", floor: 1.5},
		{name: "HandoffPingPong", metric: "server_rpcs/exchange", ceiling: 1.2},
		{name: "ReaderFanServer", metric: "server_rpcs/reader", floor: 0.9},
		{name: "ReaderFanDelegated", metric: "server_rpcs/reader", ceiling: 0.25},
	}
	for _, g := range rpcGates {
		r, ok := fresh[g.name]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL: delegation rpc gate: missing fresh result for %s\n", g.name)
			failed = true
			continue
		}
		got, ok := r.Extra[g.metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL: %s did not report %s\n", g.name, g.metric)
			failed = true
			continue
		}
		fmt.Printf("  %-24s %.3f %s", g.name, got, g.metric)
		switch {
		case g.floor > 0 && got < g.floor:
			fmt.Printf("  << floor %.2f\n", g.floor)
			fmt.Fprintf(os.Stderr, "FAIL: %s: %.3f %s below the %.2f floor\n", g.name, got, g.metric, g.floor)
			failed = true
		case g.ceiling > 0 && got > g.ceiling:
			fmt.Printf("  >> ceiling %.2f\n", g.ceiling)
			fmt.Fprintf(os.Stderr, "FAIL: %s: %.3f %s exceeds the %.2f ceiling\n", g.name, got, g.metric, g.ceiling)
			failed = true
		default:
			fmt.Println()
		}
	}

	// The client's cached-hit fast path (epoch pin + RCU snapshot scan +
	// hot-word CAS) is allocation-free by construction; a single alloc
	// per op here means a snapshot copy or pin leaked onto the hit path.
	if r, ok := fresh["LockClientCachedHitParallel"]; !ok {
		fmt.Fprintln(os.Stderr, "FAIL: cached-hit allocs: missing fresh result for LockClientCachedHitParallel")
		failed = true
	} else if r.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: LockClientCachedHitParallel allocates %d/op, want 0\n", r.AllocsPerOp)
		failed = true
	} else {
		fmt.Printf("  %-24s %d allocs/op (required 0)\n", "cached-hit allocs", r.AllocsPerOp)
	}

	// Virtual-time wall budget: the discrete-event mode exists so that
	// simulated seconds cost wall milliseconds. A 64-exchange ping-pong
	// (both variants, full client/flush/revocation stack) measures tens
	// of milliseconds of wall time when the event heap is healthy; if it
	// approaches the budget, either a raw wall-clock sleep slipped back
	// into a simulated path (the run degrades to real time) or the
	// scheduler is spinning instead of advancing the clock. Gated on
	// wall time, not virtual time — virtual durations are exact and
	// covered by the determinism tests.
	if *virtualBudget > 0 {
		cfg := ccpfs.DefaultPingPong()
		cfg.Exchanges = 64
		cfg.Virtual = ccpfs.VirtualOpts{Enabled: true, Seed: 1}
		start := time.Now()
		exp, err := ccpfs.RunPingPong(cfg)
		wall := time.Since(start)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "FAIL: virtual pingpong gate: %v\n", err)
			failed = true
		case wall > *virtualBudget:
			fmt.Fprintf(os.Stderr, "FAIL: virtual pingpong (64 exchanges) took %v wall, budget %v\n", wall, *virtualBudget)
			failed = true
		default:
			fmt.Printf("  %-24s %v wall for %d variants (budget %v)\n",
				"virtual pingpong", wall.Round(time.Millisecond), len(exp.Rows), *virtualBudget)
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}
