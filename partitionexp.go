package ccpfs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/extent"
	"ccpfs/internal/metrics"
	"ccpfs/internal/sim"
)

// Partition-scaling experiment (DESIGN.md §12): the same lock-acquire
// workload against clusters of 1..N lock servers with the lock space
// hash-partitioned across them, reporting aggregate grant throughput.
// Each simulated server admits lock RPCs at Hardware.ServerOPS, so the
// curve shows how partitioned mastership multiplies the lock service
// capacity — the scaling claim behind ROADMAP item 1, measured through
// the full client→RPC→DLM stack (partition-map routing included)
// rather than perfbench's bare engines.

// PartitionScaleConfig parameterizes the scaling experiment.
type PartitionScaleConfig struct {
	Hardware Hardware
	// Servers is the list of lock-server counts to measure.
	Servers []int
	// Workers is the number of concurrent locking goroutines; the
	// offered load must exceed the largest configuration's aggregate
	// capacity for the curve to measure saturation throughput.
	Workers int
	// Ops is the number of lock acquisitions measured per point. Every
	// op targets a fresh resource, so none is absorbed by the client
	// lock cache and each one pays a server admission.
	Ops int
	// Virtual runs each server-count point in discrete-event mode.
	Virtual VirtualOpts
}

// DefaultPartitionScale returns the scaled-down configuration.
func DefaultPartitionScale() PartitionScaleConfig {
	return PartitionScaleConfig{
		Hardware: BenchHardware(),
		Servers:  []int{1, 2, 4},
		Workers:  64,
		Ops:      3000,
	}
}

// partitionScaleOPS bounds the per-server admission rate of this
// experiment. Above ~2.5k OPS the admission interval drops toward the
// scheduler's sleep granularity (roughly a millisecond on small hosts)
// and the rate limiter stops being the binding constraint, which would
// flatten the curve for reasons that have nothing to do with the
// partition layer. The cap cancels out of the between-N comparison the
// experiment exists to show.
const partitionScaleOPS = 2500.0

// RunPartitionScale measures aggregate lock-grant throughput for each
// lock-server count.
func RunPartitionScale(cfg PartitionScaleConfig) (*Experiment, error) {
	exp := &Experiment{ID: "Partition", Title: "Lock-space partitioning: aggregate grant throughput vs lock servers"}
	hw := cfg.Hardware
	if hw.ServerOPS > partitionScaleOPS {
		hw.ServerOPS = partitionScaleOPS
	}
	tb := metrics.NewTable("lock servers", "grants", "time", "throughput (grants/s)", "vs N=1")
	base := 0.0
	for _, n := range cfg.Servers {
		var ops int
		var elapsed time.Duration
		err := runPoint(cfg.Virtual, hw, func(hw Hardware) error {
			var err error
			ops, elapsed, err = runPartitionPoint(hw, n, cfg.Workers, cfg.Ops)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("partition scale N=%d: %w", n, err)
		}
		tput := float64(ops) / elapsed.Seconds()
		if base == 0 {
			base = tput
		}
		tb.Row(fmt.Sprint(n), fmt.Sprint(ops), metrics.Seconds(elapsed),
			fmt.Sprintf("%.0f", tput), fmt.Sprintf("%.2fx", tput/base))
		exp.Rows = append(exp.Rows, Row{
			Variant:    fmt.Sprintf("N=%d", n),
			Stripes:    uint32(n),
			Throughput: tput,
			PIO:        elapsed,
		})
	}
	exp.Text = tb.String()
	return exp, nil
}

func runPartitionPoint(hw Hardware, servers, workers, ops int) (int, time.Duration, error) {
	c, err := cluster.New(cluster.Options{
		Servers:   servers,
		Policy:    dlm.SeqDLM(),
		Hardware:  hw,
		Partition: true,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	// A handful of client stacks shared by the workers: the measured
	// quantity is server-side admission capacity, not client count.
	nclients := 4
	if workers < nclients {
		nclients = workers
	}
	clients := make([]*Client, nclients)
	for i := range clients {
		cl, err := c.NewClient(fmt.Sprintf("scale-%d", i))
		if err != nil {
			return 0, 0, err
		}
		defer cl.Close()
		clients[i] = cl
	}

	clk := c.Clock()
	var next atomic.Int64
	var firstErr atomic.Value
	grp := sim.NewGroup(clk)
	ctx := context.Background()
	start := clk.Now()
	for w := 0; w < workers; w++ {
		grp.Go(func() {
			locks := clients[w%nclients].Locks()
			for {
				i := next.Add(1)
				if i > int64(ops) {
					return
				}
				// A fresh resource per op: never cached, so every
				// acquisition is a real admission at its slot's master.
				rid := dlm.ResourceID(1_000_000 + i)
				h, err := locks.Acquire(ctx, rid, dlm.PW, extent.New(0, 4096))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				locks.Unlock(h)
			}
		})
	}
	grp.Wait()
	elapsed := clk.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return 0, 0, err
	}
	return ops, elapsed, nil
}
