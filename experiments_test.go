package ccpfs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// These tests assert the *shape* of every reproduced figure: who wins
// and in roughly which direction, with deliberately loose margins so
// scheduling noise cannot flake them. The faithful magnitudes are
// reported by the benchmarks and recorded in EXPERIMENTS.md.

// skipShape skips performance-shape assertions in modes where the
// simulated timing ratios are meaningless.
func skipShape(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("shape test")
	}
	if raceEnabled {
		t.Skip("shape ratios are meaningless under the race detector's slowdown")
	}
}

// quickHW shrinks delays for shape tests, keeping the Table I ordering
// (flush ≫ RTT ≫ service time).
func quickHW() Hardware {
	hw := BenchHardware()
	hw.RTT = 40 * time.Microsecond
	hw.DiskBandwidth = 150e6
	hw.DiskLatency = 10 * time.Microsecond
	hw.ServerOPS = 100e3
	return hw
}

func TestShapeFig4PatternGap(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig4()
	cfg.Hardware = quickHW()
	cfg.BytesPerClient = 1 << 20
	cfg.WriteSizes = []int64{64 << 10}
	exp, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	get := func(p string) float64 {
		r, ok := exp.Find(func(r Row) bool { return r.Pattern == p })
		if !ok {
			t.Fatalf("missing pattern %s", p)
		}
		return r.Bandwidth
	}
	nn, seg, str := get("N-N"), get("N-1 segmented"), get("N-1 strided")
	if seg < 2*str {
		t.Errorf("segmented (%.1f MB/s) should be well above strided (%.1f MB/s)", seg/1e6, str/1e6)
	}
	if nn < 2*str {
		t.Errorf("N-N (%.1f MB/s) should be well above strided (%.1f MB/s)", nn/1e6, str/1e6)
	}
}

func TestShapeFig5FlushReduction(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig5()
	cfg.Hardware = quickHW()
	// Slow the disk well below the protocol-round ceiling so the flush
	// term is unambiguously the variable under test.
	cfg.Hardware.DiskBandwidth = 30e6
	cfg.BytesPerClient = 2 << 20
	exp, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	full := exp.Bandwidth("full flush", 0, 0)
	none := exp.Bandwidth("no flush (fakeWrite)", 0, 0)
	if none < 1.5*full {
		t.Errorf("removing flush gained only %.1fx; it should dominate", none/full)
	}
}

func TestShapeFig17Breakdown(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig17()
	cfg.Hardware = quickHW()
	cfg.TotalWrites = 64
	cfg.WriteSizes = []int64{128 << 10}
	exp, err := RunFig17(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	pw, _ := exp.Find(func(r Row) bool { return r.Variant == "PW" })
	nbw, _ := exp.Find(func(r Row) bool { return r.Variant == "NBW" })
	if pw.PIO <= nbw.PIO {
		t.Errorf("PW total (%v) should exceed NBW total (%v)", pw.PIO, nbw.PIO)
	}
	// For PW the conflict resolution dominates (paper: 67.9–69.3%) and
	// its cancel part dominates the resolution (paper: 66.5–95.7%).
	res := pw.Revocation + pw.Cancel
	if float64(res) < 0.4*float64(pw.PIO) {
		t.Errorf("PW resolution share = %.0f%%, want the dominant part",
			100*float64(res)/float64(pw.PIO))
	}
	if pw.Cancel < pw.Revocation {
		t.Errorf("PW cancel (%v) should dominate revocation (%v)", pw.Cancel, pw.Revocation)
	}
}

func TestShapeFig18Throughput(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig18()
	cfg.Hardware = quickHW()
	cfg.WritesPerClient = 10
	cfg.WriteSizes = []int64{256 << 10}
	exp, err := RunFig18(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	get := func(v string) Row {
		r, ok := exp.Find(func(r Row) bool { return r.Variant == v })
		if !ok {
			t.Fatalf("missing variant %s", v)
		}
		return r
	}
	pw, nbwER := get("PW"), get("NBW")
	if nbwER.Throughput < 2*pw.Throughput {
		t.Errorf("NBW+ER (%.0f op/s) should be well above PW (%.0f op/s)",
			nbwER.Throughput, pw.Throughput)
	}
	// Fig. 18b: early grant cuts the locking share of IO time.
	if nbwER.LockRatio >= pw.LockRatio {
		t.Errorf("NBW lock ratio (%.2f) should be below PW's (%.2f)",
			nbwER.LockRatio, pw.LockRatio)
	}
}

func TestShapeFig19aUpgrading(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig19a()
	cfg.Hardware = quickHW()
	cfg.Ops = 600
	exp, err := RunFig19a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	pw := exp.Bandwidth // silence linters; use Find for throughput
	_ = pw
	get := func(v string) float64 {
		r, _ := exp.Find(func(r Row) bool { return r.Variant == v })
		return r.Throughput
	}
	if get("NBW+U") < 2*get("NBW") {
		t.Errorf("upgrading should rescue NBW: NBW+U=%.0f NBW=%.0f", get("NBW+U"), get("NBW"))
	}
	if get("NBW+U") < 0.3*get("PW") {
		t.Errorf("NBW+U (%.0f) should approach PW (%.0f)", get("NBW+U"), get("PW"))
	}
}

func TestShapeFig19bDowngrading(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig19b()
	cfg.Hardware = quickHW()
	cfg.WritesPerClient = 8
	cfg.WriteSizes = []int64{256 << 10}
	exp, err := RunFig19b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	pw := exp.Bandwidth("PW", 0, 0)
	bwd := exp.Bandwidth("BW+D", 0, 0)
	if bwd < 1.3*pw {
		t.Errorf("BW+D (%.1f MB/s) should beat PW (%.1f MB/s)", bwd/1e6, pw/1e6)
	}
}

func TestShapeTable3LowContention(t *testing.T) {
	skipShape(t)
	// This is the only two-sided ratio bound in the file, and PIO is real
	// wall time: when `go test ./...` runs sibling package binaries on a
	// small CI box, a burst of external load during one variant's run can
	// skew the cross-variant ratio by an order of magnitude. Retry the
	// whole experiment and accept any attempt with the expected shape.
	var last error
	for attempt := 0; attempt < 4; attempt++ {
		cfg := DefaultFig20()
		cfg.Hardware = quickHW()
		cfg.BytesPerClient = 1 << 20
		exp, err := RunTable3(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", exp)
		seq := exp.Bandwidth("SeqDLM", 0, 0)
		basic := exp.Bandwidth("DLM-basic", 0, 0)
		lustre := exp.Bandwidth("DLM-Lustre", 0, 0)
		// Low contention: everyone within a small factor (paper: within 2%).
		last = nil
		for name, bw := range map[string]float64{"DLM-basic": basic, "DLM-Lustre": lustre} {
			ratio := seq / bw
			if ratio < 0.4 || ratio > 2.5 {
				last = fmt.Errorf("segmented low-contention gap SeqDLM/%s = %.2fx, want near 1", name, ratio)
			}
		}
		if last == nil {
			return
		}
	}
	t.Error(last)
}

func TestShapeFig20Strided(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig20()
	cfg.Hardware = quickHW()
	cfg.BytesPerClient = 2 << 20
	cfg.WriteSizes = []int64{64 << 10}
	exp, err := RunFig20(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	seq := exp.Bandwidth("SeqDLM", 0, 0)
	basic := exp.Bandwidth("DLM-basic", 0, 0)
	if seq < 2*basic {
		t.Errorf("SeqDLM strided (%.1f MB/s) should be well above DLM-basic (%.1f MB/s)",
			seq/1e6, basic/1e6)
	}
	// Fig. 20b: SeqDLM's PIO share of total time is small, the
	// baselines' is large.
	seqRow, _ := exp.Find(func(r Row) bool { return r.Variant == "SeqDLM" })
	basicRow, _ := exp.Find(func(r Row) bool { return r.Variant == "DLM-basic" })
	seqShare := float64(seqRow.PIO) / float64(seqRow.PIO+seqRow.Flush)
	basicShare := float64(basicRow.PIO) / float64(basicRow.PIO+basicRow.Flush)
	if seqShare >= basicShare {
		t.Errorf("SeqDLM PIO share (%.0f%%) should be below DLM-basic's (%.0f%%)",
			seqShare*100, basicShare*100)
	}
}

func TestShapeFig21MultiStripe(t *testing.T) {
	skipShape(t)
	// PIO is real wall time, so sibling package binaries running beside
	// this one can compress the cross-variant gap below the margin (see
	// TestShapeTable3LowContention). Retry and accept any attempt with
	// the expected shape.
	var last error
	for attempt := 0; attempt < 4; attempt++ {
		cfg := DefaultFig21()
		cfg.Hardware = quickHW()
		cfg.Clients = 8
		cfg.WritesPerClient = 6
		cfg.WriteSizes = []int64{188032}
		cfg.StripeCounts = []uint32{4}
		exp, err := RunFig21(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", exp)
		seq := exp.Bandwidth("SeqDLM", 0, 4)
		lus := exp.Bandwidth("DLM-Lustre", 0, 4)
		last = nil
		if seq < 1.5*lus {
			last = fmt.Errorf("SeqDLM (%.1f MB/s) should beat DLM-Lustre (%.1f MB/s) on 4 stripes",
				seq/1e6, lus/1e6)
			continue
		}
		return
	}
	t.Error(last)
}

func TestShapeFig23TileIO(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig23()
	cfg.Hardware = quickHW()
	cfg.TilesX, cfg.TilesY = 3, 2
	cfg.TileDim = 64
	cfg.StripeCounts = []uint32{1}
	exp, err := RunFig23(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	seq := exp.Bandwidth("SeqDLM", 0, 1)
	dt := exp.Bandwidth("DLM-datatype", 0, 1)
	if seq < 1.5*dt {
		t.Errorf("SeqDLM (%.1f MB/s) should beat DLM-datatype (%.1f MB/s) at 1 stripe",
			seq/1e6, dt/1e6)
	}
}

func TestShapeFig24VPIC(t *testing.T) {
	skipShape(t)
	cfg := DefaultFig24()
	cfg.Hardware = quickHW()
	cfg.ClientNodes = 4
	cfg.ProcsPerNode = 2
	cfg.Iterations = 2
	cfg.ParticleCounts = []int{16384}
	cfg.StripeCounts = []uint32{1}
	exp, err := RunFig24(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	s := exp.Bandwidth("ccPFS-S", 0, 1)
	l := exp.Bandwidth("ccPFS-L", 0, 1)
	if s < 1.5*l {
		t.Errorf("ccPFS-S (%.1f MB/s) should beat ccPFS-L (%.1f MB/s) at 1 stripe",
			s/1e6, l/1e6)
	}
}

func TestPublicAPISmoke(t *testing.T) {
	c, err := NewCluster(Options{Servers: 2, Policy: SeqDLM(), Hardware: FastHardware()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cl, err := c.NewClient("smoke")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	f, err := cl.Create("/smoke", 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello ccpfs"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if _, err := f.ReadAt(buf, 0); err != nil && err.Error() != "EOF" {
		t.Fatal(err)
	}
	if string(buf) != "hello ccpfs" {
		t.Fatalf("read %q", buf)
	}
	res, err := RunIOR(c, IORConfig{
		Pattern: PatternN1Strided, Clients: 2, WriteSize: 4096,
		WritesPerClient: 4, StripeSize: 1 << 20, StripeCount: 1, Path: "/smoke-ior",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 8 {
		t.Fatalf("res = %+v", res)
	}
}

func TestShapeAblation(t *testing.T) {
	skipShape(t)
	cfg := DefaultAblation()
	cfg.Hardware = quickHW()
	cfg.WritesPerClient = 12
	exp, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", exp)
	full := exp.Bandwidth("SeqDLM (full)", 0, 0)
	noEG := exp.Bandwidth("- early grant", 0, 0)
	if full < 1.5*noEG {
		t.Errorf("early grant should carry most of the win: full=%.1f no-EG=%.1f MB/s",
			full/1e6, noEG/1e6)
	}
	// Disabling conversion must not matter on a single-stripe write-only
	// workload (no mixed reads, no spanning writes).
	noConv := exp.Bandwidth("- conversion", 0, 0)
	if noConv < 0.3*full {
		t.Errorf("conversion should be irrelevant here: full=%.1f no-conv=%.1f MB/s",
			full/1e6, noConv/1e6)
	}
}

func TestExperimentCSV(t *testing.T) {
	exp := &Experiment{ID: "X", Rows: []Row{
		{Variant: "a", WriteSize: 65536, Stripes: 4, Bandwidth: 1e6,
			PIO: 2 * time.Second, Flush: time.Second, Throughput: 10, LockRatio: 0.5},
	}}
	csv := exp.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv = %q", csv)
	}
	if !strings.HasPrefix(lines[0], "experiment,variant") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `X,"a",`) || !strings.Contains(lines[1], "65536,4,1000000") {
		t.Fatalf("row = %q", lines[1])
	}
}
