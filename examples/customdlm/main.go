// Custom embedding: the paper's future-work direction — SeqDLM as a
// general distributed coherent-cache layer, outside any file system.
// This example builds a tiny replicated counter service: N nodes cache
// a shared page of counters, bump them locally at memory speed, and let
// SeqDLM's early grant keep the hand-offs cheap while the SN machinery
// makes the write-backs land in order.
//
//	go run ./examples/customdlm
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"ccpfs/seqdlm"
)

const (
	resource = seqdlm.ResourceID(1)
	counters = 8
	pageSize = counters * 8
)

// page is the shared durable state: an array of counters plus the SN
// tree that orders write-backs.
type page struct {
	mu   sync.Mutex
	tree seqdlm.Tree
	buf  [pageSize]byte
}

func (p *page) writeBack(rng seqdlm.Extent, sn seqdlm.SN, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, won := range p.tree.Insert(rng, sn) {
		copy(p.buf[won.Start:won.End], data[won.Start-rng.Start:won.End-rng.Start])
	}
}

func (p *page) snapshot() [pageSize]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.buf
}

// node caches the page under SeqDLM locks.
type node struct {
	id    seqdlm.ClientID
	lc    *seqdlm.LockClient
	store *page

	mu    sync.Mutex
	local [pageSize]byte
	dirty bool
	sn    seqdlm.SN
}

// bump increments counter idx. The whole page is one resource; under
// contention every bump is a lock hand-off — exactly the workload early
// grant accelerates.
func (n *node) bump(idx int) error {
	// PW: we read the page and update it (atomic read-update, Fig. 10).
	h, err := n.lc.Acquire(context.Background(), resource, seqdlm.PW, seqdlm.NewExtent(0, pageSize))
	if err != nil {
		return err
	}
	defer n.lc.Unlock(h)

	n.mu.Lock()
	defer n.mu.Unlock()
	// First use under a fresh lock: our cache may be stale; re-read the
	// durable page (the PW grant guarantees all older writers flushed).
	if n.sn != h.SN() {
		n.local = n.store.snapshot()
		n.sn = h.SN()
	}
	v := binary.LittleEndian.Uint64(n.local[idx*8:])
	binary.LittleEndian.PutUint64(n.local[idx*8:], v+1)
	n.dirty = true
	return nil
}

// flushForCancel is the Flusher hook SeqDLM's cancel path calls.
func (n *node) flushForCancel(_ context.Context, res seqdlm.ResourceID, rng seqdlm.Extent, sn seqdlm.SN) error {
	n.mu.Lock()
	dirty, buf, wsn := n.dirty, n.local, n.sn
	n.dirty = false
	n.mu.Unlock()
	if dirty && wsn <= sn {
		n.store.writeBack(seqdlm.NewExtent(0, pageSize), wsn, buf[:])
	}
	return nil
}

type directConn struct{ srv *seqdlm.Server }

func (d directConn) Lock(ctx context.Context, req seqdlm.Request) (seqdlm.Grant, error) {
	return d.srv.Lock(ctx, req)
}
func (d directConn) Release(_ context.Context, res seqdlm.ResourceID, id seqdlm.LockID) error {
	d.srv.Release(res, id)
	return nil
}
func (d directConn) Downgrade(_ context.Context, res seqdlm.ResourceID, id seqdlm.LockID, m seqdlm.Mode) error {
	return d.srv.Downgrade(res, id, m)
}

func main() {
	store := &page{}
	srv := seqdlm.NewServer(seqdlm.SeqDLM(), nil)
	nodes := map[seqdlm.ClientID]*node{}
	srv.SetNotifier(seqdlm.NotifierFunc(func(_ context.Context, rv seqdlm.Revocation) {
		if n, ok := nodes[rv.Client]; ok {
			n.lc.OnRevoke(rv.Resource, rv.Lock)
		}
		srv.RevokeAck(rv.Resource, rv.Lock)
	}))
	router := func(seqdlm.ResourceID) seqdlm.ServerConn { return directConn{srv} }

	const nnodes = 4
	const bumpsEach = 500
	for id := seqdlm.ClientID(1); id <= nnodes; id++ {
		n := &node{id: id, store: store}
		n.lc = seqdlm.NewLockClient(id, seqdlm.SeqDLM(), router, seqdlm.FlusherFunc(n.flushForCancel))
		nodes[id] = n
	}

	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			for k := 0; k < bumpsEach; k++ {
				if err := n.bump(k % counters); err != nil {
					log.Fatalf("node %d: %v", n.id, err)
				}
			}
		}(n)
	}
	wg.Wait()
	for _, n := range nodes {
		n.lc.ReleaseAll(context.Background())
	}

	final := store.snapshot()
	var total uint64
	for i := 0; i < counters; i++ {
		v := binary.LittleEndian.Uint64(final[i*8:])
		fmt.Printf("counter %d = %d\n", i, v)
		total += v
	}
	want := uint64(nnodes * bumpsEach)
	fmt.Printf("total = %d (want %d)\n", total, want)
	if total != want {
		log.Fatal("counters diverged — coherence broken")
	}
	st := srv.Stats.Snapshot()
	fmt.Printf("grants=%d revocations=%d upgrades=%d early-revocations=%d\n",
		st.Grants, st.Revocations, st.Upgrades, st.EarlyRevocations)
	fmt.Println("ok: SeqDLM kept a non-filesystem cache coherent")
}
