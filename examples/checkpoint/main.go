// Checkpoint/restart: the HPC workflow the paper's introduction
// motivates. Eight ranks write an N-1 strided checkpoint of a shared
// file, the job drains it to the data servers, and a "restarted" job
// reads it back with a different rank-to-block decomposition — the read
// phase verifying every byte. Run once with SeqDLM and once with the
// traditional DLM to see where the checkpoint time goes.
//
//	go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"ccpfs"
)

func main() {
	cfg := ccpfs.CheckpointConfig{
		Ranks:       8,
		BlockSize:   47008, // IO500-style unaligned blocks
		BlocksEach:  8,
		StripeSize:  1 << 20,
		StripeCount: 4,
		Restart:     true,
	}
	fmt.Printf("checkpoint: %d ranks x %d x %d B (%.1f MB) on %d stripes\n\n",
		cfg.Ranks, cfg.BlocksEach, cfg.BlockSize,
		float64(cfg.TotalBytes())/1e6, cfg.StripeCount)

	for _, policy := range []ccpfs.Policy{ccpfs.SeqDLM(), ccpfs.DLMLustre()} {
		c, err := ccpfs.NewCluster(ccpfs.Options{
			Servers:  4,
			Policy:   policy,
			Hardware: ccpfs.BenchHardware(),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ccpfs.RunCheckpoint(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s write %8v  drain %8v  restart-read %8v  (app-visible %.1f MB/s)\n",
			policy.Name,
			res.Write.Round(1e6), res.Drain.Round(1e6), res.Restart.Round(1e6),
			float64(res.Bytes)/res.Write.Seconds()/1e6)
		c.Close()
	}
	fmt.Println("\nThe checkpoint write is what the application waits for; SeqDLM")
	fmt.Println("moves the flushing into the drain, the paper's PIO/F split.")
}
