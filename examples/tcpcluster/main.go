// TCP cluster: the same SeqDLM/ccPFS stack over real TCP sockets
// instead of the simulated fabric — two data servers and two clients in
// one process, wired through localhost. This is what the standalone
// ccpfs-server / ccpfs-cli binaries do across machines.
//
//	go run ./examples/tcpcluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"

	"ccpfs/internal/client"
	"ccpfs/internal/dataserver"
	"ccpfs/internal/dlm"
	"ccpfs/internal/meta"
	"ccpfs/internal/rpc"
	"ccpfs/internal/transport/tcpnet"
)

func main() {
	net := tcpnet.New()
	pol := dlm.SeqDLM()

	// Two data servers on ephemeral localhost ports; the first hosts the
	// namespace.
	var addrs []string
	ns := meta.NewService()
	for i := 0; i < 2; i++ {
		cfg := dataserver.Config{Name: fmt.Sprintf("srv-%d", i), Policy: pol}
		if i == 0 {
			cfg.Meta = ns
		}
		l, err := net.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := dataserver.New(cfg)
		srv.Serve(l)
		defer srv.Close()
		addrs = append(addrs, l.Addr())
		fmt.Printf("server %d listening on %s (meta=%v)\n", i, l.Addr(), i == 0)
	}

	newClient := func(name string, id dlm.ClientID) *client.Client {
		conns := client.Conns{}
		for i, addr := range addrs {
			conn, err := net.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			ep := rpc.NewEndpoint(conn, rpc.Options{})
			conns.Data = append(conns.Data, ep)
			if i == 0 {
				conns.Meta = ep
			}
			bconn, err := net.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			conns.Bulk = append(conns.Bulk, rpc.NewEndpoint(bconn, rpc.Options{}))
		}
		cl, err := client.New(context.Background(), client.Config{Name: name, ID: id, Policy: pol}, conns)
		if err != nil {
			log.Fatal(err)
		}
		return cl
	}

	writer := newClient("writer", 1)
	defer writer.Close()
	reader := newClient("reader", 2)
	defer reader.Close()

	f, err := writer.Create("/tcp-demo", 64<<10, 2)
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("over real TCP "), 20_000)
	if _, err := f.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writer: %d bytes cached over TCP connections\n", len(payload))

	g, err := reader.Open("/tcp-demo")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(payload))
	n, err := g.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		log.Fatal(err)
	}
	if n != len(payload) || !bytes.Equal(buf, payload) {
		log.Fatalf("mismatch: n=%d", n)
	}
	fmt.Printf("reader: verified %d bytes — revocation, flush, and read all over TCP\n", n)
	fmt.Println("ok")
}
