// Contention: the paper's headline scenario. Many clients write
// interleaved (N-1 strided) blocks of one shared file — the pattern that
// nearly serializes a traditional DLM — under simulated Table-I-style
// hardware, once with SeqDLM and once with DLM-basic, and print the
// bandwidth gap (Fig. 20 of the paper, in miniature).
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"ccpfs"
)

func main() {
	const clients = 8
	const writeSize = 64 << 10
	const writesPerClient = 16

	for _, policy := range []ccpfs.Policy{ccpfs.SeqDLM(), ccpfs.DLMBasic()} {
		c, err := ccpfs.NewCluster(ccpfs.Options{
			Servers:  1,
			Policy:   policy,
			Hardware: ccpfs.BenchHardware(), // simulated NVMe + fabric
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ccpfs.RunIOR(c, ccpfs.IORConfig{
			Pattern:         ccpfs.PatternN1Strided,
			Clients:         clients,
			WriteSize:       writeSize,
			WritesPerClient: writesPerClient,
			StripeSize:      1 << 20,
			StripeCount:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s N-1 strided, %d clients x %d x 64KB: %7.1f MB/s (PIO %v, flush %v)\n",
			policy.Name, clients, writesPerClient,
			res.BandwidthPIO()/1e6, res.PIO.Round(1e6), res.Flush.Round(1e6))
		c.Close()
	}
	fmt.Println("\nSeqDLM's early grant decouples data flushing from lock conflict")
	fmt.Println("resolution, so the strided writes stay cache-speed while the")
	fmt.Println("traditional DLM serializes on flushes.")
}
