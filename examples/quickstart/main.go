// Quickstart: stand up an in-process ccPFS cluster with SeqDLM, write a
// striped file from one client, and read it back from another — the
// client-cache coherence working end to end.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	"ccpfs"
)

func main() {
	// Four data servers; the first also hosts the namespace. FastHardware
	// disables the simulated device delays — this example is about the
	// API, not performance.
	c, err := ccpfs.NewCluster(ccpfs.Options{
		Servers:  4,
		Policy:   ccpfs.SeqDLM(),
		Hardware: ccpfs.FastHardware(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	writer, err := c.NewClient("writer")
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()

	// A file with four 1 MB stripes, spread over the servers by hashing.
	f, err := writer.Create("/demo.dat", 1<<20, 4)
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("sequencers order conflicting writes! "), 100_000)
	if _, err := f.WriteAt(payload, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("writer: cached %d bytes across 4 stripes (locks held, data dirty)\n", len(payload))

	// A second client reads the file with NO fsync in between: its read
	// locks conflict with the writer's cached write locks, which forces
	// the writer to flush — that is the DLM guaranteeing coherence.
	reader, err := c.NewClient("reader")
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	g, err := reader.Open("/demo.dat")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(payload))
	n, err := g.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		log.Fatal(err)
	}
	if !bytes.Equal(buf[:n], payload[:n]) || n != len(payload) {
		log.Fatalf("coherence broken: read %d bytes, mismatch", n)
	}
	fmt.Printf("reader: saw all %d bytes without any explicit sync\n", n)

	size, _ := g.Size()
	fmt.Printf("file size: %d bytes\n", size)
	fmt.Println("ok")
}
