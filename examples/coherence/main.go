// Coherence: a producer-consumer scientific workflow (the concurrent
// workflows the paper's introduction motivates). A producer appends
// simulation snapshots to a shared file while consumers read completed
// snapshots concurrently — reads and writes interleave across clients,
// exercising read-write conflict resolution, lock upgrading, and the
// append path (PW locks with an implicit size read).
//
//	go run ./examples/coherence
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"sync"

	"ccpfs"
)

const (
	snapshots    = 12
	snapshotSize = 48 << 10
	consumers    = 3
)

func snapshot(i int) []byte {
	out := make([]byte, snapshotSize)
	for j := range out {
		out[j] = byte(i*31 + j)
	}
	return out
}

func main() {
	c, err := ccpfs.NewCluster(ccpfs.Options{
		Servers:  2,
		Policy:   ccpfs.SeqDLM(),
		Hardware: ccpfs.FastHardware(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	producer, err := c.NewClient("producer")
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()
	if _, err := producer.Create("/snapshots.dat", 64<<10, 2); err != nil {
		log.Fatal(err)
	}

	// ready carries the index of each completed snapshot to consumers.
	ready := make(chan int, snapshots)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		f, err := producer.Open("/snapshots.dat")
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < snapshots; i++ {
			off, err := f.Append(snapshot(i))
			if err != nil {
				log.Fatalf("append: %v", err)
			}
			// Publish the snapshot: flush so consumers' size checks and
			// reads observe it no matter how their reads interleave.
			if err := f.Fsync(); err != nil {
				log.Fatalf("fsync: %v", err)
			}
			fmt.Printf("producer: snapshot %2d at offset %8d\n", i, off)
			ready <- i
		}
		close(ready)
	}()

	results := make(chan string, snapshots)
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			consumer, err := c.NewClient(fmt.Sprintf("consumer-%d", w))
			if err != nil {
				log.Fatal(err)
			}
			defer consumer.Close()
			f, err := consumer.Open("/snapshots.dat")
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, snapshotSize)
			for i := range ready {
				off := int64(i) * snapshotSize
				if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
					log.Fatalf("consumer %d: read snapshot %d: %v", w, i, err)
				}
				if !bytes.Equal(buf, snapshot(i)) {
					log.Fatalf("consumer %d: snapshot %d corrupted", w, i)
				}
				results <- fmt.Sprintf("consumer %d verified snapshot %2d", w, i)
			}
		}(w)
	}

	go func() { wg.Wait(); close(results) }()
	verified := 0
	for line := range results {
		fmt.Println(line)
		verified++
	}
	if verified != snapshots {
		log.Fatalf("verified %d snapshots, want %d", verified, snapshots)
	}
	fmt.Println("ok: every snapshot observed coherently across clients")
}
