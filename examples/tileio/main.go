// Tile-IO: atomic non-contiguous writes, the §V-D workload. Each client
// owns one tile of a 2-D array stored row-major in a shared file; a tile
// write is hundreds of non-contiguous row writes that must land
// atomically, and neighbouring tiles overlap, so clients genuinely
// conflict. Runs both SeqDLM (covering-range locks + early grant) and
// DLM-datatype (exact extent-list locks) and prints the comparison.
//
//	go run ./examples/tileio
package main

import (
	"fmt"
	"log"

	"ccpfs"
)

func main() {
	cfg := ccpfs.TileConfig{
		TilesX: 3, TilesY: 2, // 6 clients, one tile each
		TileDim:     64, // 64x64 pixels per tile
		OverlapPx:   8,  // neighbouring tiles overlap by 8 pixels
		ElementSize: 4,  // 4-byte pixels
		StripeSize:  32 << 10,
		StripeCount: 4,
	}
	w, h := cfg.ArrayDim()
	fmt.Printf("tile grid %dx%d, array %dx%d px, %d bytes per tile\n\n",
		cfg.TilesX, cfg.TilesY, w, h, cfg.TileBytes())

	for _, policy := range []ccpfs.Policy{ccpfs.SeqDLM(), ccpfs.DLMDatatype()} {
		c, err := ccpfs.NewCluster(ccpfs.Options{
			Servers:  4,
			Policy:   policy,
			Hardware: ccpfs.BenchHardware(),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ccpfs.RunTileIO(c, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s %7.2f MB/s (PIO %v + flush %v)\n",
			policy.Name, res.BandwidthPIO()/1e6, res.PIO.Round(1e6), res.Flush.Round(1e6))
		c.Close()
	}
	fmt.Println("\nSeqDLM takes one covering-range lock per stripe — more conflicts")
	fmt.Println("than datatype locking's exact extents, but early grant makes the")
	fmt.Println("conflicts cheap, which is the paper's Fig. 23 result.")
}
