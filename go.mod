module ccpfs

go 1.24
