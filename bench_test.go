package ccpfs

import (
	"testing"
	"time"
)

// This file regenerates every table and figure of the paper's
// evaluation as Go benchmarks. Each benchmark runs the corresponding
// experiment at the scaled-down default configuration (paper-scale
// parameters are documented on each Run* function), logs the full table
// (visible with -v), and reports the figure's headline numbers as
// benchmark metrics. Absolute values reflect the simulated testbed; the
// shapes — who wins and by roughly what factor — are the reproduction
// target recorded in EXPERIMENTS.md.

// report exposes a bandwidth (B/s) row value as a MB/s metric.
func mbs(b *testing.B, name string, bps float64) {
	b.ReportMetric(bps/1e6, name+"_MB/s")
}

func secs(b *testing.B, name string, d time.Duration) {
	b.ReportMetric(d.Seconds(), name+"_s")
}

// BenchmarkFig04_PatternGap — §II-B Fig. 4: N-N and N-1 segmented reach
// cache speed while N-1 strided collapses under a traditional DLM.
func BenchmarkFig04_PatternGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig4(DefaultFig4())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		ws := int64(256 << 10)
		find := func(pattern string) float64 {
			r, _ := exp.Find(func(r Row) bool { return r.Pattern == pattern && r.WriteSize == ws })
			return r.Bandwidth
		}
		nn, seg, str := find("N-N"), find("N-1 segmented"), find("N-1 strided")
		mbs(b, "NN", nn)
		mbs(b, "segmented", seg)
		mbs(b, "strided", str)
		if str > 0 {
			b.ReportMetric(seg/str, "seg/strided_gap")
		}
	}
}

// BenchmarkFig05_FlushReduction — §II-C Fig. 5: cheaper data flushing
// directly recovers strided bandwidth, identifying flushing as the
// bottleneck.
func BenchmarkFig05_FlushReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig5(DefaultFig5())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		mbs(b, "full", exp.Bandwidth("full flush", 0, 0))
		mbs(b, "reduced", exp.Bandwidth("1/16 flush (first-page hack)", 0, 0))
		mbs(b, "none", exp.Bandwidth("no flush (fakeWrite)", 0, 0))
	}
}

// BenchmarkTableI_Model — §II-C: the analytic Equations (1)–(2) with
// Table I parameters.
func BenchmarkTableI_Model(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp := RunModel()
		b.Logf("\n%s", exp)
		mbs(b, "Btotal_1MB", exp.Bandwidth("", 1e6, 0))
	}
}

// BenchmarkFig17_Breakdown — §V-B2 Fig. 17: for PW the lock conflict
// resolution dominates total time and is itself dominated by the cancel
// (data flushing) part; NBW removes it via early grant.
func BenchmarkFig17_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig17(DefaultFig17())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		ws := int64(256 << 10)
		pw, _ := exp.Find(func(r Row) bool { return r.Variant == "PW" && r.WriteSize == ws })
		nbw, _ := exp.Find(func(r Row) bool { return r.Variant == "NBW" && r.WriteSize == ws })
		secs(b, "PW_total", pw.PIO)
		secs(b, "NBW_total", nbw.PIO)
		if pw.PIO > 0 {
			b.ReportMetric(float64(pw.Revocation+pw.Cancel)/float64(pw.PIO), "PW_resolution_share")
		}
		if nbw.PIO > 0 {
			b.ReportMetric(float64(pw.PIO)/float64(nbw.PIO), "NBW_speedup")
		}
	}
}

// BenchmarkFig18a_Throughput — §V-B2 Fig. 18(a): one-resource write
// throughput; paper: NBW+ER over PW is 12.9× (64 KB) and 40.2× (1 MB).
func BenchmarkFig18a_Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig18(DefaultFig18())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		big := int64(256 << 10)
		get := func(v string) float64 {
			r, _ := exp.Find(func(r Row) bool { return r.Variant == v && r.WriteSize == big })
			return r.Throughput
		}
		pw, nbwER, nbw := get("PW"), get("NBW"), get("NBW w/o ER")
		b.ReportMetric(pw, "PW_ops")
		b.ReportMetric(nbwER, "NBW+ER_ops")
		b.ReportMetric(nbw, "NBW-ER_ops")
		if pw > 0 {
			b.ReportMetric(nbwER/pw, "NBW+ER_over_PW")
		}
	}
}

// BenchmarkFig18b_LockRatio — §V-B2 Fig. 18(b): the locking/IO time
// ratio on one client falls for NBW as write size grows.
func BenchmarkFig18b_LockRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig18(DefaultFig18())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		for _, v := range []string{"PW", "NBW"} {
			for _, ws := range []int64{64 << 10, 256 << 10} {
				r, ok := exp.Find(func(r Row) bool { return r.Variant == v && r.WriteSize == ws })
				if ok {
					b.ReportMetric(r.LockRatio, v+"_"+fmtSize(ws)+"_ratio")
				}
			}
		}
	}
}

func fmtSize(ws int64) string {
	if ws >= 1<<20 {
		return "1MB"
	}
	if ws >= 256<<10 {
		return "256KB"
	}
	return "64KB"
}

// BenchmarkFig19a_Upgrading — §V-B3 Fig. 19(a): with upgrading, NBW
// matches PW on interleaved reads/writes; without it, self-conflicts
// collapse throughput.
func BenchmarkFig19a_Upgrading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig19a(DefaultFig19a())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		get := func(v string) float64 {
			r, _ := exp.Find(func(r Row) bool { return r.Variant == v })
			return r.Throughput
		}
		b.ReportMetric(get("PW"), "PW_ops")
		b.ReportMetric(get("NBW"), "NBW_ops")
		b.ReportMetric(get("NBW+U"), "NBW+U_ops")
	}
}

// BenchmarkFig19b_Downgrading — §V-B3 Fig. 19(b): BW with downgrading
// beats PW on two-stripe spanning writes (paper: 2.48×/9.40×).
func BenchmarkFig19b_Downgrading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig19b(DefaultFig19b())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		ws := int64(256 << 10)
		pw := exp.Bandwidth("PW", ws, 0)
		bwd := exp.Bandwidth("BW+D", ws, 0)
		bwnd := exp.Bandwidth("BW-D", ws, 0)
		mbs(b, "PW", pw)
		mbs(b, "BW+D", bwd)
		mbs(b, "BW-D", bwnd)
		if pw > 0 {
			b.ReportMetric(bwd/pw, "BW+D_over_PW")
		}
	}
}

// BenchmarkTable3_Segmented — §V-C1 Table III: under low contention the
// three DLMs perform alike (SeqDLM keeps the traditional advantage).
func BenchmarkTable3_Segmented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunTable3(DefaultFig20())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		mbs(b, "SeqDLM", exp.Bandwidth("SeqDLM", 0, 0))
		mbs(b, "DLM-basic", exp.Bandwidth("DLM-basic", 0, 0))
		mbs(b, "DLM-Lustre", exp.Bandwidth("DLM-Lustre", 0, 0))
	}
}

// BenchmarkFig20a_Strided1 — §V-C1 Fig. 20(a): N-1 strided bandwidth on
// one stripe; paper: SeqDLM up to 18.1× over the traditional DLMs and
// 81.7–96.9% of its own segmented reference.
func BenchmarkFig20a_Strided1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig20(DefaultFig20())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		ws := int64(256 << 10)
		seq := exp.Bandwidth("SeqDLM", ws, 0)
		basic := exp.Bandwidth("DLM-basic", ws, 0)
		lustre := exp.Bandwidth("DLM-Lustre", ws, 0)
		ref := exp.Bandwidth("SeqDLM segmented (ref)", ws, 0)
		mbs(b, "SeqDLM", seq)
		mbs(b, "DLM-basic", basic)
		mbs(b, "DLM-Lustre", lustre)
		if basic > 0 {
			b.ReportMetric(seq/basic, "SeqDLM_over_basic")
		}
		if ref > 0 {
			b.ReportMetric(seq/ref, "strided_over_segmented")
		}
		_ = lustre
	}
}

// BenchmarkFig20b_PIOSplit — §V-C1 Fig. 20(b): SeqDLM's PIO time is a
// small share of total IO time (paper ~5%) while the baselines' PIO is
// up to 99% — flushing decoupled vs on the critical path.
func BenchmarkFig20b_PIOSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig20(DefaultFig20())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		ws := int64(256 << 10)
		share := func(v string) float64 {
			r, ok := exp.Find(func(r Row) bool { return r.Variant == v && r.WriteSize == ws })
			if !ok || r.PIO+r.Flush <= 0 {
				return 0
			}
			return float64(r.PIO) / float64(r.PIO+r.Flush)
		}
		b.ReportMetric(share("SeqDLM"), "SeqDLM_PIO_share")
		b.ReportMetric(share("DLM-basic"), "basic_PIO_share")
	}
}

// BenchmarkFig21_MultiStripe — §V-C2 Fig. 21: strided unaligned writes
// on 4/8 stripes; paper: SeqDLM over DLM-Lustre 3.6–10.3× (4 stripes),
// 2.0–6.2× (8 stripes).
func BenchmarkFig21_MultiStripe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig21(DefaultFig21())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		big := int64(188032)
		seq4 := exp.Bandwidth("SeqDLM", big, 4)
		lus4 := exp.Bandwidth("DLM-Lustre", big, 4)
		seq8 := exp.Bandwidth("SeqDLM", big, 8)
		lus8 := exp.Bandwidth("DLM-Lustre", big, 8)
		mbs(b, "SeqDLM_4str", seq4)
		mbs(b, "Lustre_4str", lus4)
		if lus4 > 0 {
			b.ReportMetric(seq4/lus4, "speedup_4str")
		}
		if lus8 > 0 {
			b.ReportMetric(seq8/lus8, "speedup_8str")
		}
	}
}

// BenchmarkFig22_MultiStripeTime — §V-C2 Fig. 22: total IO time split
// for the multi-stripe runs; SeqDLM's PIO share stays small.
func BenchmarkFig22_MultiStripeTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig21(DefaultFig21())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		big := int64(188032)
		seq, _ := exp.Find(func(r Row) bool { return r.Variant == "SeqDLM" && r.WriteSize == big && r.Stripes == 4 })
		lus, _ := exp.Find(func(r Row) bool { return r.Variant == "DLM-Lustre" && r.WriteSize == big && r.Stripes == 4 })
		secs(b, "SeqDLM_PIO", seq.PIO)
		secs(b, "SeqDLM_F", seq.Flush)
		secs(b, "Lustre_PIO", lus.PIO)
		secs(b, "Lustre_F", lus.Flush)
	}
}

// BenchmarkFig23_TileIO — §V-D Fig. 23: atomic non-contiguous tile
// writes; paper: SeqDLM over DLM-datatype 51×→4.1× as stripes go 1→16.
func BenchmarkFig23_TileIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig23(DefaultFig23())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		for _, stripes := range []uint32{1, 4, 16} {
			seq := exp.Bandwidth("SeqDLM", 0, stripes)
			dt := exp.Bandwidth("DLM-datatype", 0, stripes)
			if dt > 0 {
				b.ReportMetric(seq/dt, fmtStripes(stripes)+"_speedup")
			}
		}
	}
}

func fmtStripes(s uint32) string {
	switch s {
	case 1:
		return "1str"
	case 4:
		return "4str"
	default:
		return "16str"
	}
}

// BenchmarkFig24_VPIC — §V-E Fig. 24: VPIC-IO write bandwidth; paper:
// ccPFS-S over ccPFS-L 6.2×/1.5× (small writes, 1/16 stripes) and
// 34.8×/8.8× (large writes).
func BenchmarkFig24_VPIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig24(DefaultFig24())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		for _, stripes := range []uint32{1, 16} {
			ws := int64(65536 * 4)
			s := exp.Bandwidth("ccPFS-S", ws, stripes)
			l := exp.Bandwidth("ccPFS-L", ws, stripes)
			if l > 0 {
				b.ReportMetric(s/l, fmtStripes(stripes)+"_speedup")
			}
		}
	}
}

// BenchmarkFig25_VPICTime — §V-E Fig. 25: PIO and F split of the VPIC
// runs; SeqDLM's win is a shorter PIO, and the extent cache does not
// inflate total time.
func BenchmarkFig25_VPICTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunFig24(DefaultFig24())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		ws := int64(65536 * 4)
		s, _ := exp.Find(func(r Row) bool { return r.Variant == "ccPFS-S" && r.WriteSize == ws && r.Stripes == 4 })
		l, _ := exp.Find(func(r Row) bool { return r.Variant == "ccPFS-L" && r.WriteSize == ws && r.Stripes == 4 })
		secs(b, "ccPFS-S_PIO", s.PIO)
		secs(b, "ccPFS-S_F", s.Flush)
		secs(b, "ccPFS-L_PIO", l.PIO)
		secs(b, "ccPFS-L_F", l.Flush)
	}
}

// BenchmarkAblation — design-choice decomposition (not a paper figure):
// the strided workload with each SeqDLM mechanism disabled in turn.
// Early grant carries most of the win.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := RunAblation(DefaultAblation())
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("\n%s", exp)
		full := exp.Bandwidth("SeqDLM (full)", 0, 0)
		noEG := exp.Bandwidth("- early grant", 0, 0)
		noER := exp.Bandwidth("- early revocation", 0, 0)
		floor := exp.Bandwidth("DLM-basic (floor)", 0, 0)
		mbs(b, "full", full)
		mbs(b, "no_early_grant", noEG)
		mbs(b, "no_early_revocation", noER)
		mbs(b, "basic_floor", floor)
		if noEG > 0 {
			b.ReportMetric(full/noEG, "early_grant_gain")
		}
	}
}
