package ccpfs

import (
	"fmt"
	"strings"
	"time"

	"ccpfs/internal/analysis"
	"ccpfs/internal/cluster"
	"ccpfs/internal/dlm"
	"ccpfs/internal/metrics"
	"ccpfs/internal/sim"
	"ccpfs/internal/workload"
)

// This file implements one runner per table and figure of the paper's
// evaluation (§II-B motivation and §V). Absolute numbers cannot match
// the authors' 96-node InfiniBand/NVMe testbed — the cluster here is
// in-process with simulated devices — so each experiment reproduces the
// *shape*: which DLM wins, by roughly what factor, and how the gap moves
// with write size and stripe count. Paper-scale parameters are recorded
// in the comments; the default configs are scaled down so the whole
// suite runs in minutes on one machine.

// Row is one data point of an experiment.
type Row struct {
	Variant    string
	Pattern    string
	WriteSize  int64
	Stripes    uint32
	Bandwidth  float64 // bytes/s over PIO time (the paper's headline)
	PIO        time.Duration
	Flush      time.Duration
	Throughput float64 // ops/s
	LockRatio  float64 // locking time / IO time on one client
	Revocation time.Duration
	Cancel     time.Duration
	Other      time.Duration
}

// Experiment is a completed run: rows plus a rendered table.
type Experiment struct {
	ID    string
	Title string
	Rows  []Row
	Text  string
}

// Find returns the first row matching the filter.
func (e *Experiment) Find(filter func(Row) bool) (Row, bool) {
	for _, r := range e.Rows {
		if filter(r) {
			return r, true
		}
	}
	return Row{}, false
}

// Bandwidth returns the PIO bandwidth of the row matching the keys
// (zero keys match anything).
func (e *Experiment) Bandwidth(variant string, size int64, stripes uint32) float64 {
	r, ok := e.Find(func(r Row) bool {
		return (variant == "" || r.Variant == variant) &&
			(size == 0 || r.WriteSize == size) &&
			(stripes == 0 || r.Stripes == stripes)
	})
	if !ok {
		return 0
	}
	return r.Bandwidth
}

func (e *Experiment) String() string {
	return fmt.Sprintf("%s — %s\n%s", e.ID, e.Title, e.Text)
}

// BenchHardware is the scaled testbed model the experiment suite runs
// on by default. It preserves the Table I ordering that drives every
// result: cache ≫ network ≫ disk, flush time ≫ RTT ≫ lock-server
// service time.
func BenchHardware() Hardware {
	return sim.Hardware{
		RTT:            40 * time.Microsecond,
		NetBandwidth:   1e9,
		DiskBandwidth:  25e6,
		DiskLatency:    20 * time.Microsecond,
		ServerOPS:      50e3,
		CacheBandwidth: 1e9,
	}
}

// VirtualOpts selects discrete-event mode for the experiments that
// support it (pingpong, readfan, partition). Each measured point then
// runs inside its own seeded virtual clock: simulated delays advance
// logical time instead of sleeping, so hundreds of clients finish in
// seconds of wall time, and the same seed reproduces the run — timings,
// SNs, stats — byte for byte.
type VirtualOpts struct {
	Enabled bool
	Seed    int64
}

// runPoint executes one measured point (cluster build + workload +
// teardown) on the wall clock, or inside a fresh virtual run seeded
// with vo.Seed. A fresh clock per point keeps points independent:
// variant A's event order can never leak into variant B's timeline.
func runPoint(vo VirtualOpts, hw Hardware, f func(hw Hardware) error) error {
	if !vo.Enabled {
		return f(hw)
	}
	v := sim.NewVClock(vo.Seed)
	hw.Clock = sim.Virtual(v)
	var err error
	v.Run(func() { err = f(hw) })
	return err
}

func newCluster(pol Policy, hw Hardware, servers int) (*Cluster, error) {
	return cluster.New(cluster.Options{
		Servers:  servers,
		Policy:   pol,
		Hardware: hw,
	})
}

func serversFor(stripes uint32) int {
	s := int(stripes)
	if s > 8 {
		s = 8
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ---------------------------------------------------------------------
// Fig. 4 — motivation: the IO pattern gap on a traditional DLM.
// Paper: Lustre 2.10.8, 16 clients, 1 stripe, 1 GB/client, write sizes
// 16 KB–1 MB; N-N and N-1 segmented reach cache speed, N-1 strided
// collapses.

// Fig4Config parameterizes the pattern-gap experiment.
type Fig4Config struct {
	Hardware       Hardware
	Clients        int
	BytesPerClient int64
	WriteSizes     []int64
}

// DefaultFig4 returns the scaled-down configuration.
func DefaultFig4() Fig4Config {
	return Fig4Config{
		Hardware:       BenchHardware(),
		Clients:        8,
		BytesPerClient: 3 << 20,
		WriteSizes:     []int64{16 << 10, 64 << 10, 256 << 10},
	}
}

// RunFig4 measures the three patterns under DLM-basic.
func RunFig4(cfg Fig4Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig4", Title: "IO pattern bandwidth gap under a traditional DLM"}
	tb := metrics.NewTable("pattern", "write size", "bandwidth (PIO)")
	for _, pat := range []workload.Pattern{workload.NN, workload.N1Segmented, workload.N1Strided} {
		for _, ws := range cfg.WriteSizes {
			c, err := newCluster(dlm.Basic(), cfg.Hardware, 1)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunIOR(c, workload.IORConfig{
				Pattern:         pat,
				Clients:         cfg.Clients,
				WriteSize:       ws,
				WritesPerClient: int(cfg.BytesPerClient / ws),
				StripeSize:      1 << 20,
				StripeCount:     1,
			})
			c.Close()
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, Row{
				Pattern:   pat.String(),
				WriteSize: ws,
				Bandwidth: res.BandwidthPIO(),
				PIO:       res.PIO,
				Flush:     res.Flush,
			})
			tb.Row(pat.String(), metrics.Size(ws), metrics.Bandwidth(res.BandwidthPIO()))
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Fig. 5 — motivation: reducing data flushing time recovers bandwidth.
// Paper: Lustre with fakeWrite (no disk) and a first-page-only flush
// hack. Here the equivalent knobs are the simulated disk's bandwidth.

// Fig5Config parameterizes the flush-reduction experiment.
type Fig5Config struct {
	Hardware       Hardware
	Clients        int
	WriteSize      int64
	BytesPerClient int64
}

// DefaultFig5 returns the scaled-down configuration.
func DefaultFig5() Fig5Config {
	return Fig5Config{
		Hardware:       BenchHardware(),
		Clients:        8,
		WriteSize:      64 << 10,
		BytesPerClient: 1 << 20,
	}
}

// RunFig5 measures N-1 strided under DLM-basic with progressively
// cheaper data flushing.
func RunFig5(cfg Fig5Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig5", Title: "N-1 strided bandwidth as data flushing gets cheaper"}
	tb := metrics.NewTable("flush cost", "bandwidth (PIO)")
	variants := []struct {
		name string
		mod  func(Hardware) Hardware
	}{
		{"full flush", func(h Hardware) Hardware { return h }},
		{"1/16 flush (first-page hack)", func(h Hardware) Hardware {
			h.DiskBandwidth *= 16
			h.NetBandwidth *= 16
			return h
		}},
		{"no flush (fakeWrite)", func(h Hardware) Hardware {
			h.DiskBandwidth = 0
			h.DiskLatency = 0
			h.NetBandwidth = 0
			return h
		}},
	}
	for _, v := range variants {
		c, err := newCluster(dlm.Basic(), v.mod(cfg.Hardware), 1)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunIOR(c, workload.IORConfig{
			Pattern:         workload.N1Strided,
			Clients:         cfg.Clients,
			WriteSize:       cfg.WriteSize,
			WritesPerClient: int(cfg.BytesPerClient / cfg.WriteSize),
			StripeSize:      1 << 20,
			StripeCount:     1,
		})
		c.Close()
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{
			Variant:   v.name,
			WriteSize: cfg.WriteSize,
			Bandwidth: res.BandwidthPIO(),
			PIO:       res.PIO,
			Flush:     res.Flush,
		})
		tb.Row(v.name, metrics.Bandwidth(res.BandwidthPIO()))
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// §II-C / Table I — the analytic bottleneck model.

// RunModel evaluates Equations (1)–(2) with the Table I parameters.
func RunModel() *Experiment {
	exp := &Experiment{ID: "TableI", Title: "Analytic model of lock conflict resolution (§II-C)"}
	tb := metrics.NewTable("D", "term ① (s/B)", "term ② (s/B)", "term ③ (s/B)", "bottleneck", "B_total", "w/o flush", "w/o flush+revoke")
	for _, d := range []float64{64e3, 256e3, 1e6} {
		p := analysis.TableI(16, d)
		t1, t2, t3 := p.Terms()
		tb.Row(metrics.Size(int64(d)),
			fmt.Sprintf("%.1e", t1), fmt.Sprintf("%.1e", t2), fmt.Sprintf("%.1e", t3),
			p.Bottleneck(),
			metrics.Bandwidth(p.BTotal()),
			metrics.Bandwidth(p.WithoutFlush()),
			metrics.Bandwidth(p.WithoutFlushAndRevocation()))
		exp.Rows = append(exp.Rows, Row{
			WriteSize: int64(d),
			Bandwidth: p.BTotal(),
			Variant:   p.Bottleneck(),
		})
	}
	exp.Text = tb.String()
	return exp
}

// ---------------------------------------------------------------------
// Fig. 17 — time breakdown of a totally conflicting sequential write
// sequence, PW vs NBW. Paper: 16 clients round-robin, 4,000 writes
// each, X = 16 KB–1 MB; for PW the conflict resolution is 67.9–69.3% of
// total time, dominated by the cancel (flush) part.

// Fig17Config parameterizes the breakdown experiment.
type Fig17Config struct {
	Hardware    Hardware
	Clients     int
	TotalWrites int
	WriteSizes  []int64
}

// DefaultFig17 returns the scaled-down configuration.
func DefaultFig17() Fig17Config {
	return Fig17Config{
		Hardware:    BenchHardware(),
		Clients:     8,
		TotalWrites: 96,
		WriteSizes:  []int64{16 << 10, 64 << 10, 256 << 10},
	}
}

// RunFig17 measures the ①/②/③ breakdown for PW and NBW.
func RunFig17(cfg Fig17Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig17", Title: "Sequential conflicting writes: time breakdown (PW vs NBW)"}
	tb := metrics.NewTable("mode", "write size", "total", "① revocation", "② cancel", "③ other", "resolution share")
	for _, mode := range []Mode{PW, NBW} {
		for _, ws := range cfg.WriteSizes {
			c, err := newCluster(dlm.SeqDLM(), cfg.Hardware, 1)
			if err != nil {
				return nil, err
			}
			_, bd, err := workload.RunSequential(c, workload.SequentialConfig{
				Clients:     cfg.Clients,
				Writes:      cfg.TotalWrites,
				WriteSize:   ws,
				StripeSize:  1 << 20,
				StripeCount: 1,
				Mode:        mode,
			})
			c.Close()
			if err != nil {
				return nil, err
			}
			share := 0.0
			if bd.Total > 0 {
				share = float64(bd.Revocation+bd.Cancel) / float64(bd.Total)
			}
			exp.Rows = append(exp.Rows, Row{
				Variant:    mode.String(),
				WriteSize:  ws,
				PIO:        bd.Total,
				Revocation: bd.Revocation,
				Cancel:     bd.Cancel,
				Other:      bd.Other,
			})
			tb.Row(mode, metrics.Size(ws), metrics.Seconds(bd.Total),
				metrics.Seconds(bd.Revocation), metrics.Seconds(bd.Cancel), metrics.Seconds(bd.Other),
				fmt.Sprintf("%.0f%%", share*100))
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Fig. 18 — one-resource throughput under contention: NBW/PW with and
// without early revocation, plus the locking/IO ratio. Paper: 16
// clients × 4,000 writes; NBW+ER beats PW by 12.9×/40.2× at 64 KB/1 MB.

// Fig18Config parameterizes the throughput experiment.
type Fig18Config struct {
	Hardware        Hardware
	Clients         int
	WritesPerClient int
	WriteSizes      []int64
}

// DefaultFig18 returns the scaled-down configuration.
func DefaultFig18() Fig18Config {
	return Fig18Config{
		Hardware:        BenchHardware(),
		Clients:         8,
		WritesPerClient: 16,
		WriteSizes:      []int64{64 << 10, 256 << 10},
	}
}

// RunFig18 measures throughput (Fig. 18a) and the locking/IO ratio
// (Fig. 18b) for the four variants.
func RunFig18(cfg Fig18Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig18", Title: "Parallel conflicting writes: throughput and locking/IO ratio"}
	tb := metrics.NewTable("variant", "write size", "throughput (op/s)", "locking/IO ratio")
	variants := []struct {
		name string
		mode Mode
		er   bool
	}{
		{"PW", PW, true},
		{"PW w/o ER", PW, false},
		{"NBW", NBW, true},
		{"NBW w/o ER", NBW, false},
	}
	for _, v := range variants {
		for _, ws := range cfg.WriteSizes {
			pol := dlm.SeqDLM()
			pol.EarlyRevocation = v.er
			c, err := newCluster(pol, cfg.Hardware, 1)
			if err != nil {
				return nil, err
			}
			st, err := workload.RunParallel(c, workload.ParallelConfig{
				Clients:         cfg.Clients,
				WritesPerClient: cfg.WritesPerClient,
				WriteSize:       ws,
				StripeSize:      1 << 20,
				StripeCount:     1,
				Mode:            v.mode,
			})
			c.Close()
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, Row{
				Variant:    v.name,
				WriteSize:  ws,
				Throughput: st.Throughput(),
				LockRatio:  st.LockRatio,
				PIO:        st.PIO,
				Flush:      st.Flush,
			})
			tb.Row(v.name, metrics.Size(ws), fmt.Sprintf("%.0f", st.Throughput()), fmt.Sprintf("%.2f", st.LockRatio))
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Fig. 19a — lock upgrading: interleaved reads/writes from one client.
// Paper: 1,000 interleaved ops; NBW+U matches PW, NBW without
// conversion collapses under continuous self-conflicts.

// Fig19aConfig parameterizes the upgrading experiment.
type Fig19aConfig struct {
	Hardware Hardware
	Ops      int
	Size     int64
}

// DefaultFig19a returns the scaled-down configuration.
func DefaultFig19a() Fig19aConfig {
	return Fig19aConfig{Hardware: BenchHardware(), Ops: 1000, Size: 64 << 10}
}

// RunFig19a measures interleaved read/write throughput for PW, NBW
// without conversion, and NBW with upgrading.
func RunFig19a(cfg Fig19aConfig) (*Experiment, error) {
	exp := &Experiment{ID: "Fig19a", Title: "Lock upgrading: interleaved reads/writes from one client"}
	tb := metrics.NewTable("variant", "throughput (op/s)")
	variants := []struct {
		name string
		mode Mode
		conv bool
	}{
		{"PW", PW, true},
		{"NBW", NBW, false},
		{"NBW+U", NBW, true},
	}
	for _, v := range variants {
		pol := dlm.SeqDLM()
		pol.Conversion = v.conv
		c, err := newCluster(pol, cfg.Hardware, 1)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunMixed(c, workload.MixedConfig{
			Ops:        cfg.Ops,
			Size:       cfg.Size,
			StripeSize: 1 << 20,
			WriteMode:  v.mode,
		})
		c.Close()
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{Variant: v.name, Throughput: res.Throughput(), PIO: res.PIO})
		tb.Row(v.name, fmt.Sprintf("%.0f", res.Throughput()))
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Fig. 19b — lock downgrading: every write spans two stripes. Paper:
// 16 clients; BW+D beats PW by 2.48×/9.40× at 64 KB/1 MB; BW−D ≈ PW.

// Fig19bConfig parameterizes the downgrading experiment.
type Fig19bConfig struct {
	Hardware        Hardware
	Clients         int
	WritesPerClient int
	WriteSizes      []int64
}

// DefaultFig19b returns the scaled-down configuration.
func DefaultFig19b() Fig19bConfig {
	return Fig19bConfig{
		Hardware:        BenchHardware(),
		Clients:         8,
		WritesPerClient: 12,
		WriteSizes:      []int64{64 << 10, 256 << 10},
	}
}

// RunFig19b measures spanning-write bandwidth for PW, BW without
// downgrading, and BW with downgrading.
func RunFig19b(cfg Fig19bConfig) (*Experiment, error) {
	exp := &Experiment{ID: "Fig19b", Title: "Lock downgrading: writes spanning two stripes"}
	tb := metrics.NewTable("variant", "write size", "bandwidth (PIO)")
	variants := []struct {
		name string
		mode Mode
		conv bool
	}{
		{"PW", PW, true},
		{"BW-D", BW, false},
		{"BW+D", BW, true},
	}
	for _, v := range variants {
		for _, ws := range cfg.WriteSizes {
			pol := dlm.SeqDLM()
			pol.Conversion = v.conv
			c, err := newCluster(pol, cfg.Hardware, 2)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunSpan(c, workload.SpanConfig{
				Clients:         cfg.Clients,
				WritesPerClient: cfg.WritesPerClient,
				WriteSize:       ws,
				StripeSize:      1 << 20,
				Mode:            v.mode,
			})
			c.Close()
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, Row{
				Variant:   v.name,
				WriteSize: ws,
				Bandwidth: res.BandwidthPIO(),
				PIO:       res.PIO,
				Flush:     res.Flush,
			})
			tb.Row(v.name, metrics.Size(ws), metrics.Bandwidth(res.BandwidthPIO()))
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Table III + Fig. 20 — IOR on a single-striped file. Paper: 16
// clients, 2 GB/client. Table III: N-1 segmented at 64 KB, all DLMs
// within noise. Fig. 20: N-1 strided bandwidth vs write size, SeqDLM up
// to 18.1×; SeqDLM's PIO is ~5% of total vs up to 99% for baselines.

// Fig20Config parameterizes both the Table III and Fig. 20 runs.
type Fig20Config struct {
	Hardware       Hardware
	Clients        int
	BytesPerClient int64
	WriteSizes     []int64
}

// DefaultFig20 returns the scaled-down configuration.
func DefaultFig20() Fig20Config {
	return Fig20Config{
		Hardware:       BenchHardware(),
		Clients:        8,
		BytesPerClient: 1 << 20,
		WriteSizes:     []int64{64 << 10, 256 << 10},
	}
}

type namedPolicy struct {
	name string
	pol  Policy
}

func threeDLMs() []namedPolicy {
	return []namedPolicy{
		{"SeqDLM", dlm.SeqDLM()},
		{"DLM-basic", dlm.Basic()},
		{"DLM-Lustre", dlm.Lustre()},
	}
}

// RunTable3 measures IOR N-1 segmented at 64 KB on one stripe for the
// three DLMs: low contention, so everyone should be close.
func RunTable3(cfg Fig20Config) (*Experiment, error) {
	exp := &Experiment{ID: "Table3", Title: "IOR N-1 segmented, 1 stripe, 64 KB writes"}
	tb := metrics.NewTable("DLM", "bandwidth (PIO)", "total IO time")
	for _, np := range threeDLMs() {
		c, err := newCluster(np.pol, cfg.Hardware, 1)
		if err != nil {
			return nil, err
		}
		ws := int64(64 << 10)
		// Low contention needs enough volume per client to amortize the
		// initial lock redistribution (the paper writes 2 GB/client).
		res, err := workload.RunIOR(c, workload.IORConfig{
			Pattern:         workload.N1Segmented,
			Clients:         cfg.Clients,
			WriteSize:       ws,
			WritesPerClient: int(4 * cfg.BytesPerClient / ws),
			StripeSize:      1 << 20,
			StripeCount:     1,
		})
		c.Close()
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{
			Variant:   np.name,
			WriteSize: ws,
			Bandwidth: res.BandwidthPIO(),
			PIO:       res.PIO,
			Flush:     res.Flush,
		})
		tb.Row(np.name, metrics.Bandwidth(res.BandwidthPIO()), metrics.Seconds(res.Total()))
	}
	exp.Text = tb.String()
	return exp, nil
}

// RunFig20 measures IOR N-1 strided on one stripe across write sizes
// for the three DLMs, plus the SeqDLM N-1 segmented reference; rows
// carry the PIO/F split (Fig. 20b).
func RunFig20(cfg Fig20Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig20", Title: "IOR N-1 strided, 1 stripe: bandwidth and PIO/F split"}
	tb := metrics.NewTable("variant", "write size", "bandwidth (PIO)", "PIO", "F", "PIO share")
	type variant struct {
		name    string
		pol     Policy
		pattern workload.Pattern
	}
	variants := []variant{{"SeqDLM segmented (ref)", dlm.SeqDLM(), workload.N1Segmented}}
	for _, np := range threeDLMs() {
		variants = append(variants, variant{np.name, np.pol, workload.N1Strided})
	}
	for _, v := range variants {
		for _, ws := range cfg.WriteSizes {
			c, err := newCluster(v.pol, cfg.Hardware, 1)
			if err != nil {
				return nil, err
			}
			res, err := workload.RunIOR(c, workload.IORConfig{
				Pattern:         v.pattern,
				Clients:         cfg.Clients,
				WriteSize:       ws,
				WritesPerClient: int(cfg.BytesPerClient / ws),
				StripeSize:      1 << 20,
				StripeCount:     1,
			})
			c.Close()
			if err != nil {
				return nil, err
			}
			share := 0.0
			if res.Total() > 0 {
				share = float64(res.PIO) / float64(res.Total())
			}
			exp.Rows = append(exp.Rows, Row{
				Variant:   v.name,
				Pattern:   v.pattern.String(),
				WriteSize: ws,
				Bandwidth: res.BandwidthPIO(),
				PIO:       res.PIO,
				Flush:     res.Flush,
			})
			tb.Row(v.name, metrics.Size(ws), metrics.Bandwidth(res.BandwidthPIO()),
				metrics.Seconds(res.PIO), metrics.Seconds(res.Flush), fmt.Sprintf("%.0f%%", share*100))
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Fig. 21/22 — N-1 strided on a multi-striped file with unaligned
// IO500-style write sizes, some writes spanning two stripes. Paper: 96
// clients, stripes 4 and 8, write sizes 47,008 / 188,032 / 752,128 B;
// SeqDLM beats DLM-Lustre by 3.6–10.3× (4 stripes) and 2.0–6.2× (8).

// Fig21Config parameterizes the multi-stripe experiment.
type Fig21Config struct {
	Hardware        Hardware
	Clients         int
	WritesPerClient int
	WriteSizes      []int64
	StripeCounts    []uint32
}

// DefaultFig21 returns the scaled-down configuration (write sizes kept
// byte-exact from IO500 so stripe-spanning writes still occur).
func DefaultFig21() Fig21Config {
	return Fig21Config{
		Hardware:        BenchHardware(),
		Clients:         16,
		WritesPerClient: 12,
		WriteSizes:      []int64{47008, 188032},
		StripeCounts:    []uint32{4, 8},
	}
}

// RunFig21 measures multi-stripe strided bandwidth (rows also carry the
// Fig. 22 PIO/F split).
func RunFig21(cfg Fig21Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig21", Title: "N-1 strided on a multi-striped file (unaligned, stripe-spanning)"}
	tb := metrics.NewTable("DLM", "stripes", "write size", "bandwidth (PIO)", "PIO", "F")
	for _, stripes := range cfg.StripeCounts {
		for _, np := range threeDLMs() {
			for _, ws := range cfg.WriteSizes {
				c, err := newCluster(np.pol, cfg.Hardware, serversFor(stripes))
				if err != nil {
					return nil, err
				}
				res, err := workload.RunIOR(c, workload.IORConfig{
					Pattern:         workload.N1Strided,
					Clients:         cfg.Clients,
					WriteSize:       ws,
					WritesPerClient: cfg.WritesPerClient,
					StripeSize:      1 << 20,
					StripeCount:     stripes,
				})
				c.Close()
				if err != nil {
					return nil, err
				}
				exp.Rows = append(exp.Rows, Row{
					Variant:   np.name,
					Stripes:   stripes,
					WriteSize: ws,
					Bandwidth: res.BandwidthPIO(),
					PIO:       res.PIO,
					Flush:     res.Flush,
				})
				tb.Row(np.name, stripes, metrics.Size(ws), metrics.Bandwidth(res.BandwidthPIO()),
					metrics.Seconds(res.PIO), metrics.Seconds(res.Flush))
			}
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Fig. 23 — Tile-IO: atomic non-contiguous writes, SeqDLM vs
// DLM-datatype. Paper: 96 clients, 8×12 tiles of 20,480² pixels with
// 100-pixel overlap; SeqDLM wins 51×→4.1× as stripes go 1→16.

// Fig23Config parameterizes the Tile-IO experiment.
type Fig23Config struct {
	Hardware       Hardware
	TilesX, TilesY int
	TileDim        int
	OverlapPx      int
	StripeCounts   []uint32
}

// DefaultFig23 returns the scaled-down configuration.
func DefaultFig23() Fig23Config {
	return Fig23Config{
		Hardware: BenchHardware(),
		TilesX:   4, TilesY: 3,
		TileDim:      96,
		OverlapPx:    8,
		StripeCounts: []uint32{1, 4, 16},
	}
}

// RunFig23 measures Tile-IO bandwidth and total time for both policies.
func RunFig23(cfg Fig23Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig23", Title: "Tile-IO atomic non-contiguous writes: SeqDLM vs DLM-datatype"}
	tb := metrics.NewTable("DLM", "stripes", "bandwidth (PIO)", "total time")
	pols := []namedPolicy{
		{"SeqDLM", dlm.SeqDLM()},
		{"DLM-datatype", dlm.Datatype()},
	}
	for _, stripes := range cfg.StripeCounts {
		for _, np := range pols {
			c, err := newCluster(np.pol, cfg.Hardware, serversFor(stripes))
			if err != nil {
				return nil, err
			}
			res, err := workload.RunTileIO(c, workload.TileConfig{
				TilesX:      cfg.TilesX,
				TilesY:      cfg.TilesY,
				TileDim:     cfg.TileDim,
				OverlapPx:   cfg.OverlapPx,
				ElementSize: 4,
				StripeSize:  64 << 10,
				StripeCount: stripes,
			})
			c.Close()
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, Row{
				Variant:   np.name,
				Stripes:   stripes,
				Bandwidth: res.BandwidthPIO(),
				PIO:       res.PIO,
				Flush:     res.Flush,
			})
			tb.Row(np.name, stripes, metrics.Bandwidth(res.BandwidthPIO()), metrics.Seconds(res.Total()))
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Fig. 24/25 — VPIC-IO particle writes, ccPFS-SeqDLM vs ccPFS-Lustre.
// Paper: 1,280 processes on 80 nodes, 16 data servers, 320 GB total,
// stripes 1/4/16, write sizes 256 KB and 1 MB; SeqDLM wins 6.2×/34.8×
// at 1 stripe and 1.5×/8.8× at 16 stripes.

// Fig24Config parameterizes the VPIC experiment.
type Fig24Config struct {
	Hardware     Hardware
	ClientNodes  int
	ProcsPerNode int
	Iterations   int
	// ParticleCounts maps a label (write size) to particles/iteration.
	ParticleCounts []int
	StripeCounts   []uint32
}

// DefaultFig24 returns the scaled-down configuration: chunk sizes 64 KB
// and 256 KB stand in for the paper's 256 KB and 1 MB.
func DefaultFig24() Fig24Config {
	return Fig24Config{
		Hardware:       BenchHardware(),
		ClientNodes:    8,
		ProcsPerNode:   2,
		Iterations:     2,
		ParticleCounts: []int{16384, 65536}, // ×4 B = 64 KB, 256 KB writes
		StripeCounts:   []uint32{1, 4, 16},
	}
}

// RunFig24 measures VPIC-IO bandwidth (rows carry the Fig. 25 PIO/F
// split).
func RunFig24(cfg Fig24Config) (*Experiment, error) {
	exp := &Experiment{ID: "Fig24", Title: "VPIC-IO write bandwidth: ccPFS-SeqDLM vs ccPFS-DLM-Lustre"}
	tb := metrics.NewTable("DLM", "stripes", "write size", "bandwidth (PIO)", "PIO", "F")
	pols := []namedPolicy{
		{"ccPFS-S", dlm.SeqDLM()},
		{"ccPFS-L", dlm.Lustre()},
	}
	for _, particles := range cfg.ParticleCounts {
		ws := int64(particles) * 4
		for _, stripes := range cfg.StripeCounts {
			for _, np := range pols {
				c, err := newCluster(np.pol, cfg.Hardware, serversFor(stripes))
				if err != nil {
					return nil, err
				}
				res, err := workload.RunVPIC(c, workload.VPICConfig{
					ClientNodes:      cfg.ClientNodes,
					ProcsPerNode:     cfg.ProcsPerNode,
					ParticlesPerIter: particles,
					Iterations:       cfg.Iterations,
					Variables:        8,
					ElementSize:      4,
					StripeSize:       1 << 20,
					StripeCount:      stripes,
				})
				c.Close()
				if err != nil {
					return nil, err
				}
				exp.Rows = append(exp.Rows, Row{
					Variant:   np.name,
					Stripes:   stripes,
					WriteSize: ws,
					Bandwidth: res.BandwidthPIO(),
					PIO:       res.PIO,
					Flush:     res.Flush,
				})
				tb.Row(np.name, stripes, metrics.Size(ws), metrics.Bandwidth(res.BandwidthPIO()),
					metrics.Seconds(res.PIO), metrics.Seconds(res.Flush))
			}
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Ablation — not a paper figure, but the decomposition DESIGN.md calls
// for: the N-1 strided workload of Fig. 20 with each SeqDLM mechanism
// disabled in turn, bounded below by DLM-basic. Early grant should carry
// most of the win; early revocation and conversion are incremental.

// AblationConfig parameterizes the ablation sweep.
type AblationConfig struct {
	Hardware        Hardware
	Clients         int
	WriteSize       int64
	WritesPerClient int
}

// DefaultAblation returns the scaled-down configuration.
func DefaultAblation() AblationConfig {
	return AblationConfig{
		Hardware:        BenchHardware(),
		Clients:         8,
		WriteSize:       64 << 10,
		WritesPerClient: 16,
	}
}

// RunAblation measures strided bandwidth with individual SeqDLM
// mechanisms disabled.
func RunAblation(cfg AblationConfig) (*Experiment, error) {
	exp := &Experiment{ID: "Ablation", Title: "SeqDLM mechanisms disabled one at a time (N-1 strided)"}
	tb := metrics.NewTable("variant", "bandwidth (PIO)", "early grants", "early revocations", "conversions")
	variants := []struct {
		name string
		pol  Policy
	}{
		{"SeqDLM (full)", dlm.SeqDLM()},
		{"- early grant", func() Policy { p := dlm.SeqDLM(); p.EarlyGrant = false; return p }()},
		{"- early revocation", func() Policy { p := dlm.SeqDLM(); p.EarlyRevocation = false; return p }()},
		{"- conversion", func() Policy { p := dlm.SeqDLM(); p.Conversion = false; return p }()},
		{"DLM-basic (floor)", dlm.Basic()},
	}
	for _, v := range variants {
		c, err := newCluster(v.pol, cfg.Hardware, 1)
		if err != nil {
			return nil, err
		}
		res, err := workload.RunIOR(c, workload.IORConfig{
			Pattern:         workload.N1Strided,
			Clients:         cfg.Clients,
			WriteSize:       cfg.WriteSize,
			WritesPerClient: cfg.WritesPerClient,
			StripeSize:      1 << 20,
			StripeCount:     1,
		})
		st := c.DLMStats()
		c.Close()
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{
			Variant:   v.name,
			WriteSize: cfg.WriteSize,
			Bandwidth: res.BandwidthPIO(),
			PIO:       res.PIO,
			Flush:     res.Flush,
		})
		tb.Row(v.name, metrics.Bandwidth(res.BandwidthPIO()),
			st.EarlyGrants, st.EarlyRevocations, st.Upgrades+st.Downgrades)
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Ping-pong — not a paper figure: the producer-consumer exchange
// pattern DESIGN.md §13's handoff fast path targets, with and without
// handoff. Two clients alternate whole-stripe writes over one stripe
// set; the server path pays Lock + Release per lock exchange (~2 server
// RPCs), handoff delegates the transfer client-to-client (~1). The
// grant-wait percentiles give the Fig. 17-style wait picture before and
// after.

// PingPongExpConfig parameterizes the handoff before/after experiment.
type PingPongExpConfig struct {
	Hardware    Hardware
	Exchanges   int
	WriteSize   int64
	StripeCount uint32
	// Virtual runs each variant in discrete-event mode.
	Virtual VirtualOpts
}

// DefaultPingPong returns the scaled-down configuration.
func DefaultPingPong() PingPongExpConfig {
	return PingPongExpConfig{
		Hardware:    BenchHardware(),
		Exchanges:   64,
		WriteSize:   64 << 10,
		StripeCount: 2,
	}
}

// RunPingPong measures the exchange pattern with handoff off and on.
func RunPingPong(cfg PingPongExpConfig) (*Experiment, error) {
	exp := &Experiment{ID: "PingPong", Title: "Producer-consumer exchanges: server revoke path vs client-to-client handoff"}
	tb := metrics.NewTable("variant", "bandwidth (PIO)", "server RPCs/exchange", "handoffs", "reclaims",
		"grant wait p50", "grant wait p99")
	for _, v := range []struct {
		name    string
		handoff bool
	}{
		{"server path", false},
		{"handoff", true},
	} {
		var st workload.PingPongStats
		err := runPoint(cfg.Virtual, cfg.Hardware, func(hw Hardware) error {
			c, err := cluster.New(cluster.Options{
				Servers:  1,
				Policy:   dlm.SeqDLM(),
				Hardware: hw,
				Handoff:  v.handoff,
			})
			if err != nil {
				return err
			}
			st, err = workload.RunPingPong(c, workload.PingPongConfig{
				Exchanges:   cfg.Exchanges,
				WriteSize:   cfg.WriteSize,
				StripeSize:  1 << 20,
				StripeCount: cfg.StripeCount,
			})
			c.Close()
			return err
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{
			Variant:    v.name,
			WriteSize:  cfg.WriteSize,
			Stripes:    cfg.StripeCount,
			Bandwidth:  st.BandwidthPIO(),
			PIO:        st.PIO,
			Flush:      st.Flush,
			Throughput: st.Throughput(),
		})
		tb.Row(v.name, metrics.Bandwidth(st.BandwidthPIO()),
			fmt.Sprintf("%.2f", st.ServerRPCsPerExchange),
			st.DLM.Handoffs, st.DLM.HandoffReclaims,
			time.Duration(st.GrantWait.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(st.GrantWait.Quantile(0.99)).Round(time.Microsecond))
	}
	exp.Text = tb.String()
	return exp, nil
}

// ---------------------------------------------------------------------
// Reader fan — not a paper figure: the write-then-fan-out rotation
// DESIGN.md §14's batched grants and lease propagation trees target.
// One writer updates a shared stripe, N readers re-read it, round after
// round; the server path pays at least one lock RPC per reader-round,
// the fan-out path amortizes the writer's single lock RPC over the
// whole cohort.

// ReaderFanExpConfig parameterizes the fan-out before/after experiment.
type ReaderFanExpConfig struct {
	Hardware  Hardware
	Rounds    int
	WriteSize int64
	// Readers lists the fan-out widths measured (a scaling curve per
	// variant).
	Readers []int
	// Virtual runs each point in discrete-event mode — the only way
	// fan widths in the hundreds finish in seconds.
	Virtual VirtualOpts
}

// DefaultReaderFan returns the scaled-down configuration.
func DefaultReaderFan() ReaderFanExpConfig {
	return ReaderFanExpConfig{
		Hardware:  BenchHardware(),
		Rounds:    32,
		WriteSize: 64 << 10,
		Readers:   []int{2, 4, 8},
	}
}

// RunReaderFan measures the rotation with the reader fan-out off and on
// at each fan width.
func RunReaderFan(cfg ReaderFanExpConfig) (*Experiment, error) {
	exp := &Experiment{ID: "ReaderFan", Title: "Write-then-fan-out rotation: server grant path vs batched fan-out + lease propagation"}
	tb := metrics.NewTable("variant", "readers", "read bandwidth (PIO)", "server RPCs/reader",
		"broadcasts", "gathers", "lease grants", "reclaims")
	for _, v := range []struct {
		name string
		fan  bool
	}{
		{"server path", false},
		{"fan-out", true},
	} {
		for _, n := range cfg.Readers {
			var st workload.ReaderFanStats
			err := runPoint(cfg.Virtual, cfg.Hardware, func(hw Hardware) error {
				c, err := cluster.New(cluster.Options{
					Servers:      1,
					Policy:       dlm.SeqDLM(),
					Hardware:     hw,
					Handoff:      v.fan,
					ReaderFanout: v.fan,
				})
				if err != nil {
					return err
				}
				st, err = workload.RunReaderFan(c, workload.ReaderFanConfig{
					Readers:    n,
					Rounds:     cfg.Rounds,
					WriteSize:  cfg.WriteSize,
					StripeSize: 1 << 20,
				})
				c.Close()
				return err
			})
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, Row{
				Variant:    v.name,
				Pattern:    fmt.Sprintf("N=%d", n),
				WriteSize:  cfg.WriteSize,
				Bandwidth:  st.BandwidthPIO(),
				PIO:        st.PIO,
				Flush:      st.Flush,
				Throughput: st.Throughput(),
				LockRatio:  st.ServerRPCsPerReader,
			})
			tb.Row(v.name, n, metrics.Bandwidth(st.BandwidthPIO()),
				fmt.Sprintf("%.2f", st.ServerRPCsPerReader),
				st.DLM.Broadcasts, st.DLM.Gathers, st.DLM.LeaseGrants, st.DLM.HandoffReclaims)
		}
	}
	exp.Text = tb.String()
	return exp, nil
}

// CSV renders the experiment's rows as comma-separated values with a
// header, for plotting outside Go. Duration columns are in seconds,
// bandwidth in bytes/second.
func (e *Experiment) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,variant,pattern,write_size,stripes,bandwidth_Bps,pio_s,flush_s,throughput_ops,lock_ratio,revocation_s,cancel_s,other_s\n")
	for _, r := range e.Rows {
		fmt.Fprintf(&b, "%s,%q,%q,%d,%d,%.0f,%.6f,%.6f,%.2f,%.4f,%.6f,%.6f,%.6f\n",
			e.ID, r.Variant, r.Pattern, r.WriteSize, r.Stripes,
			r.Bandwidth, r.PIO.Seconds(), r.Flush.Seconds(),
			r.Throughput, r.LockRatio,
			r.Revocation.Seconds(), r.Cancel.Seconds(), r.Other.Seconds())
	}
	return b.String()
}
